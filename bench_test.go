// Package beyondft's root benchmark harness: one benchmark per table and
// figure of the paper (regenerating its rows at the laptop-scale
// configuration; see EXPERIMENTS.md for paper-vs-measured), plus ablation
// benchmarks for the design choices called out in DESIGN.md §5.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Print the regenerated rows while benchmarking:
//
//	BEYONDFT_PRINT=1 go test -bench=Figure -benchtime 1x
package beyondft

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"beyondft/internal/experiments"
	"beyondft/internal/flowsim"
	"beyondft/internal/fluid"
	"beyondft/internal/harness"
	"beyondft/internal/netsim"
	"beyondft/internal/sim"
	"beyondft/internal/tm"
	"beyondft/internal/topology"
	"beyondft/internal/workload"
)

var printFigures = os.Getenv("BEYONDFT_PRINT") != ""

func emit(b *testing.B, figs ...*experiments.Figure) {
	b.Helper()
	for _, f := range figs {
		if len(f.Series) == 0 {
			b.Fatalf("figure %s has no series", f.ID)
		}
		for _, s := range f.Series {
			if len(s.Y) != len(s.X) {
				b.Fatalf("figure %s series %s: %d x vs %d y", f.ID, s.Label, len(s.X), len(s.Y))
			}
		}
		if printFigures {
			f.Fprint(os.Stdout)
		}
	}
}

func cfg() experiments.Config { return experiments.DefaultConfig() }

// --- Table and figure regenerators --------------------------------------

func BenchmarkTable1CostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, experiments.Table1CostModel())
	}
}

func BenchmarkObservation1FatTreeInflexibility(b *testing.B) {
	// Observation 1 / Fig. 1: exact LP shows the oversubscribed fat-tree is
	// capped at its oversubscription for a 2/k-fraction pod-to-pod TM.
	for i := 0; i < b.N; i++ {
		half := topology.NewFatTreeOversubscribed(4, 1)
		var src, dst []int
		for e := 0; e < 2; e++ {
			src = append(src, half.EdgeBase[0]+e)
			dst = append(dst, half.EdgeBase[1]+e)
		}
		m := tm.PodToPod(src, dst, 2)
		v, err := fluid.ThroughputExact(half.G, m)
		if err != nil {
			b.Fatal(err)
		}
		if v > 0.5001 || v < 0.4999 {
			b.Fatalf("throughput = %v, want 0.5", v)
		}
	}
}

func BenchmarkFigure2ThroughputProportionality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, experiments.Figure2TP())
	}
}

func BenchmarkFigure3XpanderStructure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, cfg().Figure3Xpander())
	}
}

func BenchmarkFigure4ToyExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, cfg().Figure4Toy())
	}
}

func BenchmarkFigure5aSlimFly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, cfg().Figure5a())
	}
}

func BenchmarkFigure5bLonghop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, cfg().Figure5b())
	}
}

func BenchmarkFigure5AltEqualCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, cfg().Figure5Alt())
	}
}

func BenchmarkFigure6aOversubscribedJellyfish(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, cfg().Figure6a())
	}
}

func BenchmarkFigure6bScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, cfg().Figure6b())
	}
}

func BenchmarkFigure7bAdjacentRacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, cfg().Figure7b()...)
	}
}

func BenchmarkFigure7cAllToAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, cfg().Figure7c()...)
	}
}

func BenchmarkFigure8FlowSizeCDFs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, experiments.Figure8FlowSizes())
	}
}

func BenchmarkFigure9A2ASweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, cfg().Figure9()...)
	}
}

func BenchmarkFigure10PermuteSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, cfg().Figure10()...)
	}
}

func BenchmarkFigure11PermuteLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, cfg().Figure11()...)
	}
}

func BenchmarkFigure12ParetoHull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, cfg().Figure12()...)
	}
}

func BenchmarkFigure13ProjecToR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, cfg().Figure13()...)
	}
}

func BenchmarkFigure14Skew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, cfg().Figure14()...)
	}
}

func BenchmarkFigure15LargeScaleSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, cfg().Figure15()...)
	}
}

// --- Extension experiments (DESIGN.md: optional/future-work features) ----

func BenchmarkExtensionRotorNet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, cfg().ExtensionRotorNet()...)
	}
}

func BenchmarkExtensionFailureResilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		emit(b, cfg().ExtensionFailureResilience())
	}
}

// --- Harness benchmarks ---------------------------------------------------

// BenchmarkHarnessFigure2 measures the experiment harness's parallel
// speedup on a registry of CPU-bound Figure-2 jobs: the same job set
// executed with a single worker (serial, the old cmd/figures behaviour)
// and with one worker per CPU. Each job regenerates the Fig. 2 curves many
// times so per-job work dwarfs pool scheduling overhead, as in the real
// packet-sim jobs.
func BenchmarkHarnessFigure2(b *testing.B) {
	mkJobs := func() []harness.Job {
		n := 2 * runtime.GOMAXPROCS(0)
		jobs := make([]harness.Job, n)
		for i := range jobs {
			name := fmt.Sprintf("fig2-rep%d", i)
			jobs[i] = harness.Job{
				Name: name,
				Spec: "{}",
				Run: func(ctx context.Context) (any, error) {
					var f *experiments.Figure
					for rep := 0; rep < 400; rep++ {
						f = experiments.Figure2TP()
					}
					return &experiments.JobResult{Figures: []*experiments.Figure{f}}, nil
				},
			}
		}
		return jobs
	}
	run := func(b *testing.B, workers int) {
		jobs := mkJobs()
		for i := 0; i < b.N; i++ {
			rep, err := harness.Run(context.Background(), jobs, harness.Options{Workers: workers})
			if err != nil || rep.Errors != 0 {
				b.Fatalf("harness run: %v, errors=%d", err, rep.Errors)
			}
		}
	}
	// On a single-CPU host the parallel leg still runs 2 workers so the
	// concurrent pool path is exercised (and the sub-benchmark names stay
	// distinct); the speedup only shows on multi-core machines.
	par := runtime.GOMAXPROCS(0)
	if par < 2 {
		par = 2
	}
	b.Run("j1", func(b *testing.B) { run(b, 1) })
	b.Run(fmt.Sprintf("j%d", par), func(b *testing.B) { run(b, par) })
}

// --- Micro-benchmarks of the substrates ----------------------------------

func BenchmarkEventEngine(b *testing.B) {
	e := sim.NewEngine()
	nop := func(any) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SchedulePacket(e.Now()+sim.Time(i%1000), nop, nil)
		if e.Pending() > 1024 {
			e.Run(e.Now() + 1000)
		}
	}
	e.RunAll()
}

func BenchmarkPacketSimulator(b *testing.B) {
	// Steady-state event throughput of the full DCTCP+HYB stack on the
	// cost-reduced Xpander.
	rng := rand.New(rand.NewSource(1))
	topo := topology.NewXpander(5, 9, 3, rng)
	cfgN := netsim.DefaultConfig()
	cfgN.Routing = netsim.HYB
	n := netsim.NewNetwork(&topo.Topology, cfgN)
	for f := 0; f < 200; f++ {
		src, dst := rng.Intn(162), rng.Intn(162)
		if src == dst {
			continue
		}
		n.ScheduleFlow(sim.Time(rng.Intn(10))*sim.Millisecond, src, dst, 2_000_000)
	}
	b.ResetTimer()
	done := uint64(0)
	for done < uint64(b.N) {
		prev := n.Eng.Processed()
		n.Eng.Run(n.Eng.Now() + sim.Millisecond)
		ran := n.Eng.Processed() - prev
		if ran == 0 {
			b.StopTimer()
			return
		}
		done += ran
	}
	b.ReportMetric(float64(done)/float64(b.N), "events/op")
}

func BenchmarkFlowLevelSimulator(b *testing.B) {
	// Paper-scale fat-tree (1024 servers) under a 20K flows/s Poisson load
	// for 50 ms of simulated traffic — the flow-level engine's headline:
	// paper-scale sweeps in about a second.
	for i := 0; i < b.N; i++ {
		ft := topology.NewFatTree(16)
		n := flowsim.NewNetwork(&ft.Topology, flowsim.DefaultConfig())
		rng := rand.New(rand.NewSource(11))
		at := sim.Time(0)
		for at < 50*sim.Millisecond {
			at += sim.Time(rng.ExpFloat64() / 20000 * float64(sim.Second))
			src, dst := rng.Intn(1024), rng.Intn(1024)
			if src/8 == dst/8 {
				continue
			}
			n.ScheduleFlow(at, src, dst, int64(10_000+rng.Intn(3_000_000)))
		}
		n.Run(2 * sim.Second)
	}
}

func BenchmarkGKMaxConcurrentFlow(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	sf := topology.NewSlimFly(5, 6)
	racks := workload.ActiveRacks(&sf.Topology, 0.5, false, rng)
	m := tm.LongestMatching(sf.G, racks, tm.Uniform(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := fluid.Throughput(sf.G, m, fluid.GKOptions{Epsilon: 0.1}); v <= 0 {
			b.Fatalf("zero throughput")
		}
	}
}

func BenchmarkTopologyConstruction(b *testing.B) {
	b.Run("fattree-k16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			topology.NewFatTree(16)
		}
	})
	b.Run("xpander-216", func(b *testing.B) {
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < b.N; i++ {
			topology.NewXpander(11, 18, 5, rng)
		}
	})
	b.Run("jellyfish-216", func(b *testing.B) {
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < b.N; i++ {
			topology.NewJellyfish(216, 11, 5, rng)
		}
	})
	b.Run("slimfly-q17", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			topology.NewSlimFly(17, 24)
		}
	})
	b.Run("longhop-512", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			topology.NewLonghop(9, 10, 8)
		}
	})
}

// --- Ablation benchmarks (DESIGN.md §5) ----------------------------------

// BenchmarkAblationFlowletVsPerPacket quantifies what per-flowlet (vs
// per-packet) path selection buys: per-packet ECMP reorders constantly,
// triggering spurious go-back-N retransmissions.
func BenchmarkAblationFlowletVsPerPacket(b *testing.B) {
	run := func(b *testing.B, gapNs int64) float64 {
		var last float64
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(9))
			topo := topology.NewXpander(5, 9, 3, rng)
			cfgN := netsim.DefaultConfig()
			cfgN.Routing = ECMPScheme()
			cfgN.FlowletGapNs = gapNs
			n := netsim.NewNetwork(&topo.Topology, cfgN)
			f := n.StartFlow(0, 30, 5_000_000)
			n.Eng.Run(2 * sim.Second)
			if !f.Done {
				b.Fatalf("flow incomplete")
			}
			last = float64(f.FCT()) / 1e6
		}
		return last
	}
	b.Run("flowlet-50us", func(b *testing.B) {
		ms := run(b, 50_000)
		b.ReportMetric(ms, "fct-ms")
	})
	b.Run("per-packet", func(b *testing.B) {
		ms := run(b, 0) // every packet is its own flowlet
		b.ReportMetric(ms, "fct-ms")
	})
}

// ECMPScheme avoids an import cycle lint for the ablation above.
func ECMPScheme() netsim.RoutingScheme { return netsim.ECMP }

// BenchmarkAblationHybVsHybCA compares the shipped Q-threshold hybrid (HYB)
// with the congestion-aware hybrid §6.3 describes first (HYBCA) on the HYB
// scheme's own worst case: voluminous "short" flows saturating an
// adjacent-rack ECMP bottleneck, where only the congestion-aware trigger
// reroutes (the limitation §6.3 explicitly acknowledges).
func BenchmarkAblationHybVsHybCA(b *testing.B) {
	run := func(b *testing.B, r netsim.RoutingScheme) float64 {
		var lastMs float64
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(17))
			topo := topology.NewXpander(5, 9, 3, rng)
			cfgN := netsim.DefaultConfig()
			cfgN.Routing = r
			n := netsim.NewNetwork(&topo.Topology, cfgN)
			// Many sub-Q flows between two adjacent racks: HYB never leaves
			// ECMP; HYBCA escapes once marks accumulate.
			neighbor := topo.G.Neighbors(0)[0]
			srcBase := 0
			dstBase := neighbor * 3
			for f := 0; f < 60; f++ {
				n.ScheduleFlow(sim.Time(f)*50*sim.Microsecond,
					srcBase+f%3, dstBase+f%3, 90_000) // just under Q=100KB
			}
			n.Eng.Run(10 * sim.Second)
			total := 0.0
			cnt := 0
			for _, f := range n.Flows() {
				if !f.Done {
					b.Fatalf("%v flow incomplete", r)
				}
				total += float64(f.FCT()) / 1e6
				cnt++
			}
			lastMs = total / float64(cnt)
		}
		return lastMs
	}
	b.Run("hyb", func(b *testing.B) { b.ReportMetric(run(b, netsim.HYB), "avg-fct-ms") })
	b.Run("hyb-ca", func(b *testing.B) { b.ReportMetric(run(b, netsim.HYBCA), "avg-fct-ms") })
}

// BenchmarkAblationGKEpsilon shows the FPTAS accuracy/time trade-off.
func BenchmarkAblationGKEpsilon(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	jf := topology.NewJellyfish(50, 7, 6, rng)
	racks := workload.ActiveRacks(jf, 0.6, false, rng)
	m := tm.LongestMatching(jf.G, racks, tm.Uniform(6))
	for _, eps := range []float64{0.20, 0.10, 0.05} {
		eps := eps
		b.Run(benchName(eps), func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				v = fluid.Throughput(jf.G, m, fluid.GKOptions{Epsilon: eps})
			}
			b.ReportMetric(v, "throughput")
		})
	}
}

func benchName(eps float64) string {
	switch {
	case eps >= 0.2:
		return "eps-0.20"
	case eps >= 0.1:
		return "eps-0.10"
	default:
		return "eps-0.05"
	}
}

// BenchmarkAblationECNThreshold sweeps DCTCP's marking threshold: too low
// wastes throughput, too high defeats the low-latency goal.
func BenchmarkAblationECNThreshold(b *testing.B) {
	for _, th := range []int{5, 20, 80} {
		th := th
		b.Run(map[int]string{5: "K-5", 20: "K-20", 80: "K-80"}[th], func(b *testing.B) {
			var fctMs float64
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(6))
				topo := topology.NewXpander(5, 9, 3, rng)
				cfgN := netsim.DefaultConfig()
				cfgN.ECNThresholdPackets = th
				n := netsim.NewNetwork(&topo.Topology, cfgN)
				for j := 0; j < 8; j++ {
					n.StartFlow(j, 80+j, 1_000_000)
				}
				n.Eng.Run(2 * sim.Second)
				total := 0.0
				for _, f := range n.Flows() {
					if !f.Done {
						b.Fatalf("flow incomplete at K=%d", th)
					}
					total += float64(f.FCT()) / 1e6
				}
				fctMs = total / 8
			}
			b.ReportMetric(fctMs, "avg-fct-ms")
		})
	}
}

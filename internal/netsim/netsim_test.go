package netsim

import (
	"math/rand"
	"testing"

	"beyondft/internal/graph"
	"beyondft/internal/sim"
	"beyondft/internal/topology"
)

func newGraph(n int) *graph.Graph { return graph.New(n) }

// twoRackTopo is a minimal topology: two directly connected ToRs, each with
// `servers` servers.
func twoRackTopo(servers int) *topology.Topology {
	g := newGraph(2)
	g.AddEdge(0, 1)
	return &topology.Topology{
		Name:        "tworacks",
		G:           g,
		Servers:     []int{servers, servers},
		SwitchPorts: servers + 1,
	}
}

func TestSingleFlowCompletesAtLineRate(t *testing.T) {
	topo := twoRackTopo(2)
	cfg := DefaultConfig()
	n := NewNetwork(topo, cfg)
	const size = 10_000_000 // 10 MB
	f := n.StartFlow(0, 2, size)
	n.Eng.Run(sim.Time(sim.Second))
	if !f.Done {
		t.Fatalf("flow did not complete; drops=%d", n.TotalDrops)
	}
	// 10 MB at 10 Gbps is 8 ms of pure serialization (plus header and
	// slow-start overheads); allow up to 2x.
	idealNs := float64(size) * 8 / cfg.LinkRateGbps
	got := float64(f.FCT())
	if got < idealNs {
		t.Fatalf("FCT %.0f ns beat the line rate %.0f ns", got, idealNs)
	}
	if got > 2*idealNs {
		t.Fatalf("FCT %.0f ns is more than 2x the ideal %.0f ns (throughput collapse)", got, idealNs)
	}
}

func TestTwoFlowsShareBottleneckFairly(t *testing.T) {
	topo := twoRackTopo(4)
	cfg := DefaultConfig()
	n := NewNetwork(topo, cfg)
	const size = 5_000_000
	f1 := n.StartFlow(0, 4, size)
	f2 := n.StartFlow(1, 5, size)
	n.Eng.Run(sim.Time(sim.Second))
	if !f1.Done || !f2.Done {
		t.Fatalf("flows did not complete")
	}
	// Two flows share one 10G link: each should take roughly twice the solo
	// time; their FCTs should be within 40% of each other (DCTCP fairness).
	r := float64(f1.FCT()) / float64(f2.FCT())
	if r < 0.6 || r > 1.67 {
		t.Fatalf("unfair FCTs: %v vs %v (ratio %.2f)", f1.FCT(), f2.FCT(), r)
	}
	soloNs := float64(size) * 8 / cfg.LinkRateGbps
	if float64(f1.FCT()) < 1.5*soloNs {
		t.Fatalf("flow finished too fast for a shared bottleneck: %v < 1.5x solo %v", f1.FCT(), soloNs)
	}
}

func TestShortFlowLatencyDominatedByRTT(t *testing.T) {
	topo := twoRackTopo(2)
	cfg := DefaultConfig()
	n := NewNetwork(topo, cfg)
	f := n.StartFlow(0, 2, 1000) // 1 KB, one packet
	n.Eng.Run(sim.Time(sim.Second))
	if !f.Done {
		t.Fatalf("flow did not complete")
	}
	if f.FCT() > sim.Time(100*sim.Microsecond) {
		t.Fatalf("1KB flow took %v; want well under 100µs on an idle path", f.FCT())
	}
}

func TestECNMarkingKeepsQueuesBounded(t *testing.T) {
	run := func(ecnThreshold int) (drops, marked uint64) {
		topo := twoRackTopo(8)
		cfg := DefaultConfig()
		cfg.ECNThresholdPackets = ecnThreshold
		n := NewNetwork(topo, cfg)
		// 8 senders into the single inter-switch link.
		for i := 0; i < 8; i++ {
			n.StartFlow(i, 8+i, 2_000_000)
		}
		n.Eng.Run(sim.Time(5 * sim.Second))
		for _, l := range n.interLinks {
			marked += l.Marked
		}
		for _, f := range n.Flows() {
			if !f.Done {
				t.Fatalf("flow %d incomplete (ecn=%d)", f.ID, ecnThreshold)
			}
		}
		return n.TotalDrops, marked
	}
	dropsECN, markedECN := run(20)
	dropsNoECN, _ := run(100_000) // marking disabled: drop-tail only
	if markedECN == 0 {
		t.Fatalf("expected ECN marks under 8:1 contention")
	}
	if dropsECN >= dropsNoECN {
		t.Fatalf("ECN should reduce drops: with=%d without=%d", dropsECN, dropsNoECN)
	}
	if dropsECN > 200 {
		t.Fatalf("DCTCP should mostly avoid drops, got %d", dropsECN)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []sim.Time {
		topo := twoRackTopo(4)
		cfg := DefaultConfig()
		cfg.Seed = 42
		cfg.Routing = HYB
		n := NewNetwork(topo, cfg)
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 20; i++ {
			src := rng.Intn(4)
			dst := 4 + rng.Intn(4)
			at := sim.Time(rng.Intn(1000)) * sim.Microsecond
			n.ScheduleFlow(at, src, dst, int64(1000+rng.Intn(500_000)))
		}
		n.Eng.Run(sim.Time(sim.Second))
		var out []sim.Time
		for _, f := range n.Flows() {
			out = append(out, f.EndNs)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different flow counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic FCT at flow %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestVLBUsesLongerPaths(t *testing.T) {
	// Star of 5 switches around a ring; VLB should bounce through vias.
	g := newGraph(5)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
	}
	topo := &topology.Topology{Name: "ring5", G: g,
		Servers: []int{2, 2, 2, 2, 2}, SwitchPorts: 4}
	cfgE := DefaultConfig()
	cfgE.Routing = ECMP
	cfgV := DefaultConfig()
	cfgV.Routing = VLB
	hops := func(cfg Config) float64 {
		n := NewNetwork(topo, cfg)
		n.StartFlow(0, 2, 3_000_000) // rack 0 -> rack 1 (adjacent)
		n.Eng.Run(sim.Time(sim.Second))
		tx := uint64(0)
		for _, l := range n.interLinks {
			tx += l.Transmitted
		}
		return float64(tx)
	}
	he, hv := hops(cfgE), hops(cfgV)
	if hv <= he {
		t.Fatalf("VLB inter-switch transmissions (%v) should exceed ECMP's (%v)", hv, he)
	}
}

func TestHybSwitchesToVLBAfterThreshold(t *testing.T) {
	topo := twoRackTopo(2)
	cfg := DefaultConfig()
	cfg.Routing = HYB
	n := NewNetwork(topo, cfg)
	f := n.StartFlow(0, 2, 50_000) // under Q: pure ECMP
	n.Eng.Run(sim.Time(sim.Second))
	if !f.Done {
		t.Fatalf("short flow incomplete")
	}
	s := &n.connAt(f.ID).snd
	if s.hybVLB {
		t.Fatalf("HYB switched to VLB before the Q threshold")
	}
	f2 := n.StartFlow(1, 3, 1_000_000) // over Q: must flip
	n.Eng.Run(sim.Time(2 * sim.Second))
	if !f2.Done {
		t.Fatalf("long flow incomplete")
	}
	if !n.connAt(f2.ID).snd.hybVLB {
		t.Fatalf("HYB did not switch to VLB after the Q threshold")
	}
}

func TestDropRecoveryViaTimeout(t *testing.T) {
	topo := twoRackTopo(4)
	cfg := DefaultConfig()
	cfg.QueueCapPackets = 5 // tiny queues force drops
	cfg.ECNThresholdPackets = 1000
	n := NewNetwork(topo, cfg)
	for i := 0; i < 4; i++ {
		n.StartFlow(i, 4+i, 500_000)
	}
	n.Eng.Run(sim.Time(5 * sim.Second))
	if n.TotalDrops == 0 {
		t.Fatalf("expected drops with 5-packet queues and no ECN")
	}
	for _, f := range n.Flows() {
		if !f.Done {
			t.Fatalf("flow %d failed to recover from drops", f.ID)
		}
	}
}

func TestServerBottleneckIgnoredMode(t *testing.T) {
	topo := twoRackTopo(4)
	cfg := DefaultConfig()
	cfg.ServerLinkRateGbps = 4000 // effectively unconstrained
	n := NewNetwork(topo, cfg)
	f := n.StartFlow(0, 4, 1_000_000)
	n.Eng.Run(sim.Time(sim.Second))
	if !f.Done {
		t.Fatalf("flow incomplete")
	}
	// The inter-switch 10G link is now the only constraint.
	idealNs := 1_000_000.0 * 8 / cfg.LinkRateGbps
	if float64(f.FCT()) > 3*idealNs {
		t.Fatalf("FCT %v too slow for network-only bottleneck (ideal %.0f ns)", f.FCT(), idealNs)
	}
}

package minheap

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHeapSortsRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		var h Heap
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			p := rng.NormFloat64()
			want[i] = p
			h.Push(Item{Node: int32(i), Pri: p})
		}
		sort.Float64s(want)
		for i := 0; i < n; i++ {
			got := h.Pop()
			if got.Pri != want[i] {
				t.Fatalf("trial %d: pop %d = %v, want %v", trial, i, got.Pri, want[i])
			}
		}
		if h.Len() != 0 {
			t.Fatalf("heap not empty after draining: %d", h.Len())
		}
	}
}

func TestHeapResetKeepsCapacity(t *testing.T) {
	h := make(Heap, 0, 16)
	for i := 0; i < 10; i++ {
		h.Push(Item{Node: int32(i), Pri: float64(i)})
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("len after reset = %d", h.Len())
	}
	if cap(h) < 10 {
		t.Fatalf("reset dropped capacity: %d", cap(h))
	}
	h.Push(Item{Node: 3, Pri: 3})
	if got := h.Pop(); got.Node != 3 {
		t.Fatalf("pop after reset = %+v", got)
	}
}

func TestHeapDuplicatePriorities(t *testing.T) {
	var h Heap
	for i := 0; i < 8; i++ {
		h.Push(Item{Node: int32(i), Pri: 1.0})
	}
	h.Push(Item{Node: 99, Pri: 0.5})
	if got := h.Pop(); got.Node != 99 {
		t.Fatalf("min not popped first: %+v", got)
	}
	for i := 0; i < 8; i++ {
		if got := h.Pop(); got.Pri != 1.0 {
			t.Fatalf("bad pri %v", got.Pri)
		}
	}
}

package flowsim

import (
	"math"
	"math/rand"
	"testing"

	"beyondft/internal/graph"
	"beyondft/internal/sim"
	"beyondft/internal/topology"
)

func pairTopo(servers int) *topology.Topology {
	g := graph.New(2)
	g.AddEdge(0, 1)
	sv := []int{servers, servers}
	return &topology.Topology{Name: "pair", G: g, Servers: sv, SwitchPorts: servers + 1}
}

func TestSingleFlowIdealFCT(t *testing.T) {
	n := NewNetwork(pairTopo(2), DefaultConfig())
	n.ScheduleFlow(0, 0, 2, 10_000_000)
	n.Run(sim.Second)
	f := n.Flows()[0]
	if !f.Done {
		t.Fatalf("flow incomplete")
	}
	// Exactly size*8/rate at flow level: 10MB at 10G = 8 ms.
	want := 8 * sim.Millisecond
	if d := f.FCT() - want; d < -sim.Time(1000) || d > sim.Time(1000) {
		t.Fatalf("FCT = %v, want %v (±1µs)", f.FCT(), want)
	}
}

func TestTwoFlowsShareExactlyHalf(t *testing.T) {
	n := NewNetwork(pairTopo(2), DefaultConfig())
	n.ScheduleFlow(0, 0, 2, 10_000_000)
	n.ScheduleFlow(0, 1, 3, 10_000_000)
	n.Run(sim.Second)
	for _, f := range n.Flows() {
		if !f.Done {
			t.Fatalf("flow incomplete")
		}
		// Two equal flows over one 10G link: both finish at 16 ms.
		want := 16 * sim.Millisecond
		if d := f.FCT() - want; d < -sim.Time(2000) || d > sim.Time(2000) {
			t.Fatalf("FCT = %v, want %v", f.FCT(), want)
		}
	}
}

func TestMaxMinNotJustEqualSplit(t *testing.T) {
	// Three flows: A and B share the inter-switch link; C is intra-rack...
	// flowsim requires distinct racks, so instead: A long flow and B short
	// flow share the link; when B finishes, A speeds up. Total time for A:
	// first 2x the short flow's span at 5G, then the rest at 10G.
	n := NewNetwork(pairTopo(2), DefaultConfig())
	n.ScheduleFlow(0, 0, 2, 10_000_000) // A: 10 MB
	n.ScheduleFlow(0, 1, 3, 2_500_000)  // B: 2.5 MB
	n.Run(sim.Second)
	a, b := n.Flows()[0], n.Flows()[1]
	// B at 5G: 4 ms. A: 2.5MB done by then, remaining 7.5MB at 10G = 6 ms,
	// total 10 ms.
	if d := b.FCT() - 4*sim.Millisecond; d < -sim.Time(2000) || d > sim.Time(2000) {
		t.Fatalf("B FCT = %v, want 4ms", b.FCT())
	}
	if d := a.FCT() - 10*sim.Millisecond; d < -sim.Time(3000) || d > sim.Time(3000) {
		t.Fatalf("A FCT = %v, want 10ms (speedup after B departs)", a.FCT())
	}
}

func TestServerNICBottleneck(t *testing.T) {
	// Two flows FROM the same server: its uplink (10G) is the bottleneck
	// even though the fabric has spare capacity.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	topo := &topology.Topology{Name: "star", G: g, Servers: []int{2, 2, 2}, SwitchPorts: 4}
	n := NewNetwork(topo, DefaultConfig())
	n.ScheduleFlow(0, 0, 2, 5_000_000) // server 0 -> rack 1
	n.ScheduleFlow(0, 0, 4, 5_000_000) // server 0 -> rack 2
	n.Run(sim.Second)
	for _, f := range n.Flows() {
		want := 8 * sim.Millisecond // 5MB at 5G each
		if d := f.FCT() - want; d < -sim.Time(2000) || d > sim.Time(2000) {
			t.Fatalf("FCT = %v, want %v (NIC-limited)", f.FCT(), want)
		}
	}
}

func TestVLBUsesVia(t *testing.T) {
	// Ring of 4: ECMP between adjacent racks uses 3 links (up, direct,
	// down); VLB flows traverse more.
	ringT := func() *topology.Topology {
		g := graph.New(4)
		for i := 0; i < 4; i++ {
			g.AddEdge(i, (i+1)%4)
		}
		return &topology.Topology{Name: "ring4", G: g,
			Servers: []int{1, 1, 1, 1}, SwitchPorts: 3}
	}
	cfgE := DefaultConfig()
	nE := NewNetwork(ringT(), cfgE)
	nE.ScheduleFlow(0, 0, 1, 1000)
	nE.Run(sim.Second)
	cfgV := DefaultConfig()
	cfgV.Routing = VLB
	cfgV.Seed = 5
	nV := NewNetwork(ringT(), cfgV)
	nV.ScheduleFlow(0, 0, 1, 1000)
	nV.Run(sim.Second)
	le := len(nE.Flows()[0].links)
	lv := len(nV.Flows()[0].links)
	if le != 3 {
		t.Fatalf("ECMP path uses %d links, want 3", le)
	}
	if lv < le {
		t.Fatalf("VLB path (%d links) should not be shorter than ECMP (%d)", lv, le)
	}
}

func TestHYBThresholdSplitsBySize(t *testing.T) {
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, (i+1)%4)
	}
	topo := &topology.Topology{Name: "ring4", G: g, Servers: []int{1, 1, 1, 1}, SwitchPorts: 3}
	cfg := DefaultConfig()
	cfg.Routing = HYB
	cfg.Seed = 8
	n := NewNetwork(topo, cfg)
	n.ScheduleFlow(0, 0, 1, 50_000)    // short: ECMP (3 links on adjacent racks)
	n.ScheduleFlow(0, 0, 1, 5_000_000) // long: VLB
	n.Run(sim.Second)
	short, long := n.Flows()[0], n.Flows()[1]
	if len(short.links) != 3 {
		t.Fatalf("short flow should take the direct path, got %d links", len(short.links))
	}
	// The long flow bounces off a via unless the random via equals the
	// destination; with seed 8 it detours.
	if len(long.links) <= 3 {
		t.Fatalf("long flow should take a VLB detour, got %d links", len(long.links))
	}
}

func TestPoissonWorkloadThroughput(t *testing.T) {
	// A loaded pair of racks: aggregate completion throughput approaches
	// link capacity under sustained load.
	n := NewNetwork(pairTopo(4), DefaultConfig())
	rng := rand.New(rand.NewSource(3))
	at := sim.Time(0)
	totalBytes := int64(0)
	for i := 0; i < 200; i++ {
		at += sim.Time(rng.ExpFloat64() * float64(100*sim.Microsecond))
		size := int64(500_000 + rng.Intn(1_000_000))
		src := rng.Intn(4)
		dst := 4 + rng.Intn(4)
		n.ScheduleFlow(at, src, dst, size)
		totalBytes += size
	}
	n.Run(10 * sim.Second)
	var last sim.Time
	for _, f := range n.Flows() {
		if !f.Done {
			t.Fatalf("flow incomplete")
		}
		if f.EndNs > last {
			last = f.EndNs
		}
	}
	gbps := float64(totalBytes) * 8 / float64(last)
	// One 10G inter-switch link is the bottleneck; offered load is ~2x it.
	if gbps < 8 || gbps > 10.01 {
		t.Fatalf("sustained throughput %.2f Gbps, want ~10 (link-limited)", gbps)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() []sim.Time {
		n := NewNetwork(pairTopo(4), DefaultConfig())
		rng := rand.New(rand.NewSource(9))
		at := sim.Time(0)
		for i := 0; i < 100; i++ {
			at += sim.Time(rng.ExpFloat64() * float64(50*sim.Microsecond))
			n.ScheduleFlow(at, rng.Intn(4), 4+rng.Intn(4), int64(10_000+rng.Intn(2_000_000)))
		}
		n.Run(10 * sim.Second)
		var out []sim.Time
		for _, f := range n.Flows() {
			out = append(out, f.EndNs)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at flow %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAgreesWithPacketSimOnSimpleScenario(t *testing.T) {
	// Cross-validation anchor: flow-level FCT must be a (tight) lower bound
	// on packet-level FCT for a solo bulk flow, within ~25% (transport
	// overheads: slow start, header bytes, ACK path).
	// The packet-level figure comes from netsim's TestSingleFlowCompletesAtLineRate
	// invariants; here we just assert the flow-level ideal.
	n := NewNetwork(pairTopo(2), DefaultConfig())
	n.ScheduleFlow(0, 0, 2, 10_000_000)
	n.Run(sim.Second)
	ideal := float64(10_000_000*8) / 10.0 // ns
	got := float64(n.Flows()[0].FCT())
	if math.Abs(got-ideal)/ideal > 0.001 {
		t.Fatalf("flow-level FCT %.0f deviates from ideal %.0f", got, ideal)
	}
}

func TestPaperScaleFatTreeIsTractable(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale flow-level run")
	}
	// The point of flowsim: a k=16 fat-tree (1024 servers) at a §6.4-style
	// arrival rate, simulated for 50 ms of traffic, completes in seconds.
	ft := topology.NewFatTree(16)
	cfg := DefaultConfig()
	n := NewNetwork(&ft.Topology, cfg)
	rng := rand.New(rand.NewSource(11))
	at := sim.Time(0)
	flows := 0
	for at < 50*sim.Millisecond {
		at += sim.Time(rng.ExpFloat64() * float64(sim.Second) / 20000) // 20K flows/s
		src := rng.Intn(1024)
		dst := rng.Intn(1024)
		if src/8 == dst/8 { // skip intra-rack
			continue
		}
		n.ScheduleFlow(at, src, dst, int64(10_000+rng.Intn(3_000_000)))
		flows++
	}
	n.Run(2 * sim.Second)
	done := 0
	for _, f := range n.Flows() {
		if f.Done {
			done++
		}
	}
	if done < flows*99/100 {
		t.Fatalf("only %d of %d flows completed", done, flows)
	}
}

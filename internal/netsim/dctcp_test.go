package netsim

import (
	"testing"

	"beyondft/internal/sim"
)

// TestAlphaRisesUnderPersistentCongestion checks DCTCP's α estimator: under
// a sustained many-to-one incast the marked-ACK fraction is high, so α must
// move well away from zero.
func TestAlphaRisesUnderPersistentCongestion(t *testing.T) {
	topo := twoRackTopo(8)
	cfg := DefaultConfig()
	n := NewNetwork(topo, cfg)
	// 8 long flows into the single inter-switch link: 8:1 congestion.
	for i := 0; i < 8; i++ {
		n.StartFlow(i, 8+i, 20_000_000)
	}
	n.Eng.Run(20 * sim.Millisecond) // mid-transfer: congestion is persistent
	sawAlpha := 0.0
	for _, f := range n.Flows() {
		if a := n.connAt(f.ID).snd.alpha; a > sawAlpha {
			sawAlpha = a
		}
	}
	if sawAlpha < 0.05 {
		t.Fatalf("max alpha = %v after sustained congestion, want clearly > 0", sawAlpha)
	}
	if sawAlpha > 1.0+1e-9 {
		t.Fatalf("alpha = %v out of range", sawAlpha)
	}
}

// TestAlphaStaysLowWithoutCongestion: a solo flow on an idle path sees only
// its own NIC's marks (if any); alpha must stay small compared to incast.
func TestAlphaComparedAcrossLoads(t *testing.T) {
	alphaOf := func(flows int) float64 {
		topo := twoRackTopo(8)
		cfg := DefaultConfig()
		n := NewNetwork(topo, cfg)
		for i := 0; i < flows; i++ {
			n.StartFlow(i, 8+i, 5_000_000)
		}
		n.Eng.Run(10 * sim.Millisecond)
		max := 0.0
		for _, f := range n.Flows() {
			if a := n.connAt(f.ID).snd.alpha; a > max {
				max = a
			}
		}
		return max
	}
	low, high := alphaOf(1), alphaOf(8)
	if high <= low {
		t.Fatalf("alpha under 8:1 incast (%v) should exceed solo flow's (%v)", high, low)
	}
}

// TestFastRetransmitAvoidsTimeout: a burst loss recovered via three dup-ACKs
// must complete far sooner than the RTO would allow.
func TestFastRetransmitAvoidsTimeout(t *testing.T) {
	topo := twoRackTopo(2)
	cfg := DefaultConfig()
	cfg.QueueCapPackets = 12 // small queue: slow-start overshoot drops
	cfg.ECNThresholdPackets = 1000
	cfg.MinRTONs = int64(200 * sim.Millisecond) // make timeouts obvious
	n := NewNetwork(topo, cfg)
	f := n.StartFlow(0, 2, 1_000_000)
	n.Eng.Run(5 * sim.Second)
	if !f.Done {
		t.Fatalf("flow incomplete")
	}
	if n.TotalDrops == 0 {
		t.Skipf("no drops induced; cannot observe recovery")
	}
	// 1 MB at 10G is ~0.9 ms; with only fast retransmit the FCT stays tens
	// of ms at worst. A 200 ms RTO dependence would push it over 200 ms.
	if f.FCT() > sim.Time(150*sim.Millisecond) {
		t.Fatalf("FCT %v suggests recovery waited for the RTO", f.FCT())
	}
}

// TestRTORecoveryAsLastResort: when the path drops everything for a while
// (simulated by a tiny queue and a burst of competitors), flows still finish
// thanks to the retransmission timer.
func TestWindowBoundedInFlight(t *testing.T) {
	topo := twoRackTopo(2)
	cfg := DefaultConfig()
	n := NewNetwork(topo, cfg)
	f := n.StartFlow(0, 2, 10_000_000)
	maxInflight := int32(0)
	for i := 0; i < 500 && !f.Done; i++ {
		n.Eng.Run(n.Eng.Now() + sim.Time(50*sim.Microsecond))
		s := &n.connAt(f.ID).snd
		if inflight := s.nextSeq - s.sndUna; inflight > maxInflight {
			maxInflight = inflight
		}
		// In-flight never exceeds twice the current window: packets sent
		// under the pre-reduction cwnd stay outstanding across a
		// multiplicative decrease, which cuts by at most α/2 <= 1/2 per
		// window (and loss recovery resets nextSeq to sndUna outright).
		if inflight := s.nextSeq - s.sndUna; float64(inflight) > 2*s.cwnd+1 {
			t.Fatalf("inflight %d exceeds 2x cwnd %.1f", inflight, s.cwnd)
		}
	}
	if maxInflight < 2 {
		t.Fatalf("window never opened (max inflight %d)", maxInflight)
	}
}

// TestECNEchoPropagation: the receiver must echo exactly the data packet's
// CE state.
func TestECNEchoPropagation(t *testing.T) {
	topo := twoRackTopo(2)
	cfg := DefaultConfig()
	n := NewNetwork(topo, cfg)
	f := n.StartFlow(0, 2, 10*1400) // occupies slot 0 so injected ACKs account
	r := &receiver{}
	p := n.pool.get()
	p.FlowID = f.ID

	p.Seq = 0
	p.CE = true
	p.SrcServer = 0
	p.DstServer = 2
	r.onData(n, p)
	// The ACK is sitting in hostUp[2]'s queue or in flight; run to deliver.
	// Simpler: inspect receiver state and craft expectations via a second
	// packet without CE.
	if r.rcvNxt != 1 {
		t.Fatalf("rcvNxt = %d, want 1", r.rcvNxt)
	}
	p2 := n.pool.get()
	p2.FlowID = f.ID
	p2.Seq = 1
	p2.CE = false
	p2.SrcServer = 0
	p2.DstServer = 2
	r.onData(n, p2)
	if r.rcvNxt != 2 {
		t.Fatalf("rcvNxt = %d, want 2", r.rcvNxt)
	}
}

// TestReceiverOutOfOrderBuffering: gaps are buffered, cumulative ACK jumps
// once the hole fills.
func TestReceiverOutOfOrderBuffering(t *testing.T) {
	topo := twoRackTopo(2)
	cfg := DefaultConfig()
	n := NewNetwork(topo, cfg)
	f := n.StartFlow(0, 2, 10*1400) // occupies slot 0 so injected ACKs account
	r := &receiver{}
	feed := func(seq int32) {
		p := n.pool.get()
		p.FlowID = f.ID
		p.Seq = seq
		p.DstServer = 2
		p.SrcServer = 0
		r.onData(n, p)
	}
	feed(0)
	feed(2)
	feed(3)
	if r.rcvNxt != 1 {
		t.Fatalf("rcvNxt = %d, want 1 (hole at 1)", r.rcvNxt)
	}
	if len(r.ooo) != 2 {
		t.Fatalf("ooo buffer = %d entries, want 2", len(r.ooo))
	}
	feed(1)
	if r.rcvNxt != 4 {
		t.Fatalf("rcvNxt = %d, want 4 after the hole fills", r.rcvNxt)
	}
	if len(r.ooo) != 0 {
		t.Fatalf("ooo buffer not drained")
	}
}

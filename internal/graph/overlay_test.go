package graph

import (
	"math/rand"
	"testing"
)

// applyDeltaToGraph is the overlay oracle: replay the delta on a mutable
// Graph rebuilt with room for appended nodes — deletions first (clamped,
// like RemoveEdge), then additions, then node masking — and freeze it.
func applyDeltaToGraph(g *Graph, d Delta) *Graph {
	out := New(g.N() + d.AddNodes)
	for _, e := range g.Edges() {
		out.AddEdgeMulti(e.U, e.V, e.Mult)
	}
	for _, e := range d.DelEdges {
		m := e.Mult
		if m <= 0 {
			m = 1
		}
		for i := 0; i < m; i++ {
			out.RemoveEdge(e.U, e.V)
		}
	}
	for _, e := range d.AddEdges {
		m := e.Mult
		if m <= 0 {
			m = 1
		}
		out.AddEdgeMulti(e.U, e.V, m)
	}
	for _, u := range d.DelNodes {
		for _, v := range out.Neighbors(u) {
			for out.RemoveEdge(u, v) {
			}
		}
	}
	return out
}

// requireViewsEqual asserts the overlay presents exactly the same rows as
// the oracle's rebuilt Frozen() view.
func requireViewsEqual(t *testing.T, o *Overlay, want *CSR) {
	t.Helper()
	if o.N() != want.N() {
		t.Fatalf("overlay N=%d, rebuilt N=%d", o.N(), want.N())
	}
	for u := 0; u < want.N(); u++ {
		gn, gm := o.Row(u)
		wn, wm := want.Row(u)
		if len(gn) != len(wn) {
			t.Fatalf("node %d: overlay row %v (mult %v), rebuilt %v (mult %v)", u, gn, gm, wn, wm)
		}
		for k := range gn {
			if gn[k] != wn[k] || gm[k] != wm[k] {
				t.Fatalf("node %d slot %d: overlay (%d×%d), rebuilt (%d×%d)",
					u, k, gn[k], gm[k], wn[k], wm[k])
			}
		}
	}
}

func TestOverlayEdgeDeletion(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdgeMulti(1, 2, 3)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)

	// Remove one unit of the trunked link: multiplicity drops to 2.
	o, err := NewOverlay(g.Frozen(), Delta{DelEdges: []Edge{{U: 1, V: 2, Mult: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	nbr, mult := o.Row(1)
	if len(nbr) != 2 || nbr[0] != 0 || nbr[1] != 2 || mult[1] != 2 {
		t.Fatalf("row 1 after one-unit delete: %v ×%v", nbr, mult)
	}
	// Untouched rows alias the base.
	bn, _ := g.Frozen().Row(3)
	on, _ := o.Row(3)
	if &bn[0] != &on[0] {
		t.Fatalf("untouched row 3 was copied, want aliased")
	}
	// Over-deletion clamps at zero.
	o2, err := NewOverlay(g.Frozen(), Delta{DelEdges: []Edge{{U: 1, V: 2, Mult: 99}}})
	if err != nil {
		t.Fatal(err)
	}
	nbr, _ = o2.Row(1)
	if len(nbr) != 1 || nbr[0] != 0 {
		t.Fatalf("row 1 after over-delete: %v", nbr)
	}
}

func TestOverlayNodeMaskAndAppend(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)

	o, err := NewOverlay(g.Frozen(), Delta{
		DelNodes: []int{2},
		AddNodes: 1,
		AddEdges: []Edge{{U: 4, V: 0}, {U: 4, V: 3, Mult: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.N() != 5 {
		t.Fatalf("N=%d, want 5", o.N())
	}
	if nbr, _ := o.Row(2); len(nbr) != 0 {
		t.Fatalf("masked node 2 still has neighbors %v", nbr)
	}
	if nbr, _ := o.Row(1); len(nbr) != 1 || nbr[0] != 0 {
		t.Fatalf("node 1 should have lost its edge to 2: %v", nbr)
	}
	nbr, mult := o.Row(4)
	if len(nbr) != 2 || nbr[0] != 0 || nbr[1] != 3 || mult[1] != 2 {
		t.Fatalf("appended node row: %v ×%v", nbr, mult)
	}
	requireViewsEqual(t, o, applyDeltaToGraph(g, Delta{
		DelNodes: []int{2},
		AddNodes: 1,
		AddEdges: []Edge{{U: 4, V: 0}, {U: 4, V: 3, Mult: 2}},
	}).Frozen())
}

func TestOverlayDeleteThenAddSameEdge(t *testing.T) {
	// Deletions clamp before additions apply: on a non-edge, del 1 + add 1
	// must yield multiplicity 1 (not 0), matching sequential Graph replay.
	g := New(3)
	g.AddEdge(0, 1)
	d := Delta{
		DelEdges: []Edge{{U: 1, V: 2}},
		AddEdges: []Edge{{U: 1, V: 2}},
	}
	o, err := NewOverlay(g.Frozen(), d)
	if err != nil {
		t.Fatal(err)
	}
	requireViewsEqual(t, o, applyDeltaToGraph(g, d).Frozen())
	nbr, _ := o.Row(2)
	if len(nbr) != 1 || nbr[0] != 1 {
		t.Fatalf("row 2: %v, want [1]", nbr)
	}
}

func TestOverlayValidation(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	base := g.Frozen()
	cases := []Delta{
		{DelEdges: []Edge{{U: 0, V: 5}}},                     // out of range
		{AddEdges: []Edge{{U: 1, V: 1}}},                     // self-loop
		{AddEdges: []Edge{{U: -1, V: 0}}},                    // negative node
		{AddNodes: -1},                                       // negative append
		{DelNodes: []int{7}},                                 // node out of range
		{DelNodes: []int{0}, AddEdges: []Edge{{U: 0, V: 1}}}, // add to deleted
	}
	for i, d := range cases {
		if _, err := NewOverlay(base, d); err == nil {
			t.Errorf("case %d: delta %+v accepted, want error", i, d)
		}
	}
	if _, err := NewOverlay(nil, Delta{}); err == nil {
		t.Errorf("nil base accepted")
	}
}

func TestOverlayConnectivityAndMaterialize(t *testing.T) {
	// A 4-cycle stays connected after one edge loss, disconnects after a
	// node mask.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	if !ViewConnected(g.Frozen()) {
		t.Fatal("cycle should be connected")
	}
	o, err := NewOverlay(g.Frozen(), Delta{DelEdges: []Edge{{U: 1, V: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if !ViewConnected(o) {
		t.Fatal("cycle minus one edge should stay connected")
	}
	o2, err := NewOverlay(g.Frozen(), Delta{DelNodes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if ViewConnected(o2) {
		t.Fatal("masked node should disconnect the view")
	}
	// Materialize round-trips through a standalone CSR.
	mat := o.Materialize()
	requireViewsEqual(t, o, mat)
	dist := ViewBFS(o2, 0)
	if dist[1] != -1 || dist[0] != 0 {
		t.Fatalf("ViewBFS over masked view: %v", dist)
	}
}

// FuzzDeltaOverlay drives random deltas (edge deletions/additions, node
// masks, appended nodes) over random base graphs and requires the overlay
// view to match a from-scratch Frozen() rebuild exactly — the invariant the
// what-if engine's patched arc layouts rest on.
func FuzzDeltaOverlay(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(4), uint8(4), uint8(1), uint8(1))
	f.Add(int64(7), uint8(3), uint8(0), uint8(9), uint8(2), uint8(0))
	f.Add(int64(42), uint8(17), uint8(30), uint8(0), uint8(0), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, delsRaw, addsRaw, maskRaw, appendRaw uint8) {
		n := 2 + int(nRaw%18)
		dels := int(delsRaw % 32)
		adds := int(addsRaw % 32)
		masks := int(maskRaw % 3)
		appended := int(appendRaw % 3)
		rng := rand.New(rand.NewSource(seed))

		g := New(n)
		for v := 1; v < n; v++ {
			g.AddEdge(v, rng.Intn(v))
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdgeMulti(u, v, 1+rng.Intn(3))
			}
		}

		var d Delta
		d.AddNodes = appended
		total := n + appended
		edges := g.Edges()
		for i := 0; i < dels && len(edges) > 0; i++ {
			e := edges[rng.Intn(len(edges))]
			d.DelEdges = append(d.DelEdges, Edge{U: e.U, V: e.V, Mult: 1 + rng.Intn(3)})
		}
		deleted := map[int]bool{}
		for i := 0; i < masks; i++ {
			u := rng.Intn(n)
			d.DelNodes = append(d.DelNodes, u)
			deleted[u] = true
		}
		for i := 0; i < adds; i++ {
			u, v := rng.Intn(total), rng.Intn(total)
			if u == v || deleted[u] || deleted[v] {
				continue
			}
			d.AddEdges = append(d.AddEdges, Edge{U: u, V: v, Mult: 1 + rng.Intn(2)})
		}

		o, err := NewOverlay(g.Frozen(), d)
		if err != nil {
			t.Fatalf("valid delta rejected: %v", err)
		}
		want := applyDeltaToGraph(g, d).Frozen()
		requireViewsEqual(t, o, want)
		if ViewConnected(o) != want.Connected() {
			t.Fatalf("ViewConnected=%v, rebuilt Connected=%v", ViewConnected(o), want.Connected())
		}
	})
}

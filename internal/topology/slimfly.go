package topology

import (
	"fmt"

	"beyondft/internal/graph"
)

// SlimFly is the diameter-2 McKay–Miller–Širáň topology of Besta & Hoefler
// (SC'14). This implementation covers prime q with q ≡ 1 (mod 4), which
// includes every instance the paper evaluates (q = 17: 578 ToRs, network
// degree 25) and our scaled default (q = 5: 50 ToRs, degree 7).
type SlimFly struct {
	Topology
	Q int
}

// NewSlimFly builds the MMS graph for prime q ≡ 1 (mod 4): 2q² switches of
// network degree (3q−1)/2, each with serversPerSwitch servers.
//
// Construction: vertices are (t, x, y) with t ∈ {0,1} and x, y ∈ GF(q).
//   - (0, x, y) ~ (0, x, y′)  iff y − y′ is a nonzero quadratic residue,
//   - (1, m, c) ~ (1, m, c′)  iff c − c′ is a quadratic non-residue,
//   - (0, x, y) ~ (1, m, c)   iff y = m·x + c.
//
// Because q ≡ 1 (mod 4), −1 is a quadratic residue, so both generator sets
// are symmetric and the graph is undirected.
func NewSlimFly(q, serversPerSwitch int) *SlimFly {
	if !isPrime(q) || q%4 != 1 {
		panic(fmt.Sprintf("slimfly: q=%d must be a prime ≡ 1 (mod 4)", q))
	}
	n := 2 * q * q
	g := graph.New(n)

	// Quadratic residues of GF(q)*.
	isQR := make([]bool, q)
	for a := 1; a < q; a++ {
		isQR[a*a%q] = true
	}

	id := func(t, x, y int) int { return t*q*q + x*q + y }

	// Intra-block edges.
	for x := 0; x < q; x++ {
		for y := 0; y < q; y++ {
			for yp := y + 1; yp < q; yp++ {
				d := (yp - y) % q
				if isQR[d] {
					g.AddEdge(id(0, x, y), id(0, x, yp))
				} else {
					g.AddEdge(id(1, x, y), id(1, x, yp))
				}
			}
		}
	}
	// Cross edges: (0,x,y) ~ (1,m,c) iff y = m*x + c (mod q).
	for m := 0; m < q; m++ {
		for c := 0; c < q; c++ {
			for x := 0; x < q; x++ {
				y := (m*x + c) % q
				g.AddEdge(id(0, x, y), id(1, m, c))
			}
		}
	}

	servers := make([]int, n)
	for i := range servers {
		servers[i] = serversPerSwitch
	}
	degree := (3*q - 1) / 2
	return &SlimFly{
		Topology: Topology{
			Name:        fmt.Sprintf("slimfly-q%d", q),
			G:           g,
			Servers:     servers,
			SwitchPorts: degree + serversPerSwitch,
		},
		Q: q,
	}
}

// NetworkDegree returns the SlimFly network degree (3q−1)/2.
func (s *SlimFly) NetworkDegree() int { return (3*s.Q - 1) / 2 }

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

package harness

import (
	"container/list"
	"encoding/json"
	"sync"
)

// LRU is an in-memory, byte-budgeted, least-recently-used cache of encoded
// job results. It is the L1 tier the serving daemon puts in front of the
// on-disk Cache (L2): lookups cost one map probe instead of a file read,
// and the byte budget bounds resident memory no matter how many distinct
// queries a long-running process serves. Safe for concurrent use.
type LRU struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	order    *list.List // front = most recently used; values are *lruEntry
	items    map[string]*list.Element

	hits, misses, evictions int64
}

type lruEntry struct {
	key  string
	data json.RawMessage
}

// NewLRU returns an LRU holding at most maxBytes of result payload
// (key bytes count toward the budget too, so a flood of tiny entries cannot
// grow the map unboundedly). maxBytes <= 0 disables the cache: Get always
// misses and Put is a no-op.
func NewLRU(maxBytes int64) *LRU {
	return &LRU{
		maxBytes: maxBytes,
		order:    list.New(),
		items:    map[string]*list.Element{},
	}
}

// entrySize is the budget charge for one entry.
func entrySize(key string, data json.RawMessage) int64 {
	return int64(len(key) + len(data))
}

// Get returns the cached encoding for key and marks it most recently used.
// The returned slice is shared: callers must not mutate it.
func (l *LRU) Get(key string) (json.RawMessage, bool) {
	if l == nil || l.maxBytes <= 0 {
		return nil, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[key]
	if !ok {
		l.misses++
		return nil, false
	}
	l.order.MoveToFront(el)
	l.hits++
	return el.Value.(*lruEntry).data, true
}

// Put stores data under key (replacing any previous entry) and evicts
// least-recently-used entries until the cache fits its byte budget. An
// entry larger than the whole budget is not stored at all.
func (l *LRU) Put(key string, data json.RawMessage) {
	if l == nil || l.maxBytes <= 0 {
		return
	}
	size := entrySize(key, data)
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[key]; ok {
		e := el.Value.(*lruEntry)
		l.bytes += size - entrySize(e.key, e.data)
		e.data = data
		l.order.MoveToFront(el)
	} else {
		if size > l.maxBytes {
			return
		}
		l.items[key] = l.order.PushFront(&lruEntry{key: key, data: data})
		l.bytes += size
	}
	for l.bytes > l.maxBytes {
		back := l.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*lruEntry)
		l.order.Remove(back)
		delete(l.items, e.key)
		l.bytes -= entrySize(e.key, e.data)
		l.evictions++
	}
}

// LRUStats is a point-in-time snapshot of the cache.
type LRUStats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"max_bytes"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// Stats reports entry/byte occupancy and lifetime hit/miss/eviction counts.
func (l *LRU) Stats() LRUStats {
	if l == nil {
		return LRUStats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return LRUStats{
		Entries:   len(l.items),
		Bytes:     l.bytes,
		MaxBytes:  l.maxBytes,
		Hits:      l.hits,
		Misses:    l.misses,
		Evictions: l.evictions,
	}
}

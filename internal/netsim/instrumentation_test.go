package netsim

import (
	"math/rand"
	"testing"

	"beyondft/internal/sim"
	"beyondft/internal/topology"
)

func TestAvgDataPathHopsECMPvsVLB(t *testing.T) {
	// On a ring, VLB detours must visit strictly more switches per packet
	// than shortest-path ECMP.
	hops := func(r RoutingScheme) float64 {
		topo := ringTopo(8, 2)
		cfg := DefaultConfig()
		cfg.Routing = r
		n := NewNetwork(topo, cfg)
		n.StartFlow(0, 2, 2_000_000) // rack 0 -> rack 1
		n.Eng.Run(5 * sim.Second)
		if !n.Flows()[0].Done {
			t.Fatalf("%v flow incomplete", r)
		}
		return n.AvgDataPathHops()
	}
	e, v := hops(ECMP), hops(VLB)
	if e < 2.0-1e-9 || e > 2.0+1e-9 {
		t.Fatalf("ECMP avg hops = %v, want exactly 2 (src ToR + dst ToR)", e)
	}
	if v <= e+0.5 {
		t.Fatalf("VLB avg hops %v should clearly exceed ECMP's %v", v, e)
	}
}

func TestInterSwitchStatsConsistency(t *testing.T) {
	topo := twoRackTopo(4)
	cfg := DefaultConfig()
	n := NewNetwork(topo, cfg)
	for i := 0; i < 4; i++ {
		n.StartFlow(i, 4+i, 500_000)
	}
	n.Eng.Run(5 * sim.Second)
	s := n.InterSwitchStats()
	if s.Links != 2 {
		t.Fatalf("links = %d, want 2 (one directed pair)", s.Links)
	}
	if s.Transmitted == 0 || s.BytesTx == 0 {
		t.Fatalf("no traffic recorded: %+v", s)
	}
	// The queue cap bounds the observed maximum: capPkts waiting plus the
	// packet in service (MaxQueue records the DCTCP instant queue).
	if s.MaxQueue > cfg.QueueCapPackets+1 {
		t.Fatalf("max queue %d exceeds the cap %d (+1 in service)", s.MaxQueue, cfg.QueueCapPackets)
	}
	// Under sustained 4:1 contention, DCTCP should have pushed a queue to
	// at least the ECN threshold once.
	if s.MaxQueue < cfg.ECNThresholdPackets {
		t.Fatalf("max queue %d never reached the ECN threshold %d", s.MaxQueue, cfg.ECNThresholdPackets)
	}
}

func TestDCTCPKeepsQueuesNearThreshold(t *testing.T) {
	// The DCTCP promise: persistent queues hover near the marking threshold
	// rather than filling the buffer. Sample occupancy during a long
	// transfer and check the bottleneck queue stays well under the cap.
	topo := twoRackTopo(2)
	cfg := DefaultConfig()
	n := NewNetwork(topo, cfg)
	n.StartFlow(0, 2, 50_000_000)
	samples := 0
	over := 0
	for i := 0; i < 200; i++ {
		n.Eng.Run(n.Eng.Now() + sim.Time(200*sim.Microsecond))
		for _, q := range n.QueueLengths() {
			samples++
			if q > 3*cfg.ECNThresholdPackets {
				over++
			}
		}
	}
	if samples == 0 {
		t.Fatalf("no samples")
	}
	if frac := float64(over) / float64(samples); frac > 0.05 {
		t.Fatalf("queues exceeded 3x ECN threshold in %.1f%% of samples", frac*100)
	}
}

func TestHopAccountingWithFatTree(t *testing.T) {
	ft := topology.NewFatTree(4)
	cfg := DefaultConfig()
	n := NewNetwork(&ft.Topology, cfg)
	// Cross-pod flow visits 5 switches: edge, agg, core, agg, edge.
	src := 0                     // first server (pod 0, first edge switch)
	dst := ft.TotalServers() - 1 // last server (pod k-1)
	n.StartFlow(src, dst, 100_000)
	n.Eng.Run(sim.Second)
	if !n.Flows()[0].Done {
		t.Fatalf("flow incomplete")
	}
	got := n.AvgDataPathHops()
	if got < 5-1e-9 || got > 5+1e-9 {
		t.Fatalf("cross-pod fat-tree path visits %v switches, want 5", got)
	}
}

func TestDeterministicAcrossInstrumentation(t *testing.T) {
	// Instrumentation must not perturb simulation results.
	run := func() sim.Time {
		rng := rand.New(rand.NewSource(3))
		topo := twoRackTopo(3)
		cfg := DefaultConfig()
		n := NewNetwork(topo, cfg)
		for i := 0; i < 3; i++ {
			n.StartFlow(i, 3+i, int64(100_000+rng.Intn(400_000)))
		}
		n.Eng.Run(2 * sim.Second)
		_ = n.InterSwitchStats()
		_ = n.QueueLengths()
		var last sim.Time
		for _, f := range n.Flows() {
			if f.EndNs > last {
				last = f.EndNs
			}
		}
		return last
	}
	if run() != run() {
		t.Fatalf("instrumented runs diverge")
	}
}

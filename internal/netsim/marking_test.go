package netsim

import (
	"testing"

	"beyondft/internal/sim"
)

// TestMarkingAtThresholdSemantics pins the DCTCP instant-queue marking rule
// at the link level: an arriving packet is marked iff the system already
// holds at least K packets (queued + in service), so the first mark lands on
// the packet that raises the occupancy to K+1 — not K+2 as the old
// queued-only accounting did.
func TestMarkingAtThresholdSemantics(t *testing.T) {
	const K = 3
	const N = 10
	eng := sim.NewEngine()
	var delivered, dropped int
	// Rate 0.001 Gbps: serializing one packet takes ~12 ms, so all N
	// enqueues at t=0 pile up behind the first packet in service.
	l := newLink(eng, 0.001, 1, 100, K,
		func(p *Packet) { delivered++ },
		func(p *Packet) { dropped++ })
	pkts := make([]*Packet, N)
	for i := range pkts {
		pkts[i] = &Packet{SizeBytes: 1500}
		l.Enqueue(pkts[i])
	}
	if dropped != 0 {
		t.Fatalf("%d drops with a 100-packet buffer", dropped)
	}
	for i, p := range pkts {
		// Before enqueuing packet i, the system holds i packets.
		wantCE := i >= K
		if p.CE != wantCE {
			t.Fatalf("packet %d: CE = %v, want %v (K = %d)", i, p.CE, wantCE, K)
		}
	}
	if want := uint64(N - K); l.Marked != want {
		t.Fatalf("Marked = %d, want %d", l.Marked, want)
	}
	if l.MaxQueue != N {
		t.Fatalf("MaxQueue = %d, want %d (instant queue counts the packet in service)", l.MaxQueue, N)
	}
	if l.QueueLen() != N {
		t.Fatalf("QueueLen = %d, want %d before any tx completes", l.QueueLen(), N)
	}
}

// TestDropTailBoundsWaitingQueue: the buffer capacity applies to waiting
// packets; the packet in service does not consume a buffer slot.
func TestDropTailBoundsWaitingQueue(t *testing.T) {
	const cap = 4
	eng := sim.NewEngine()
	var dropped int
	l := newLink(eng, 0.001, 1, cap, 1000,
		func(p *Packet) {}, func(p *Packet) { dropped++ })
	// First packet goes straight into service; the next `cap` fill the
	// buffer; everything beyond drops.
	for i := 0; i < cap+3; i++ {
		l.Enqueue(&Packet{SizeBytes: 1500})
	}
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2 (1 in service + %d buffered)", dropped, cap)
	}
	if l.QueueLen() != cap+1 {
		t.Fatalf("QueueLen = %d, want %d", l.QueueLen(), cap+1)
	}
}

// TestKSPCacheBounded: the k-shortest-paths cache evicts oldest-first once
// it reaches Cfg.KSPCacheEntries pairs.
func TestKSPCacheBounded(t *testing.T) {
	topo := ringTopo(8, 1)
	cfg := DefaultConfig()
	cfg.Routing = KSP
	cfg.KSPCacheEntries = 4
	n := NewNetwork(topo, cfg)
	for src := int32(0); src < 8; src++ {
		for dst := int32(0); dst < 8; dst++ {
			if src != dst {
				n.kspPaths(src, dst)
			}
		}
	}
	if got := n.KSPCacheSize(); got != 4 {
		t.Fatalf("KSPCacheSize = %d, want the bound 4", got)
	}
	// A bounded cache still returns correct paths after eviction churn.
	paths := n.kspPaths(0, 4)
	if len(paths) == 0 {
		t.Fatalf("no paths after eviction churn")
	}
	for _, p := range paths {
		if p[0] != 0 || p[len(p)-1] != 4 {
			t.Fatalf("bad path endpoints: %v", p)
		}
	}
}

// TestPacketConservationCounters: once the event queue drains, every
// injected packet was delivered or dropped, and delivered data bytes cover
// every flow's payload without exceeding the injected bytes.
func TestPacketConservationCounters(t *testing.T) {
	for _, scheme := range []RoutingScheme{ECMP, VLB, HYB, KSP, MPTCP} {
		topo := ringTopo(6, 2)
		cfg := DefaultConfig()
		cfg.Routing = scheme
		cfg.QueueCapPackets = 16 // small buffers: force some drops
		n := NewNetwork(topo, cfg)
		for i := 0; i < 6; i++ {
			n.StartFlow(i, (i+4)%12, int64(200_000+17_000*i))
		}
		n.Eng.RunAll()
		for _, f := range n.Flows() {
			if !f.Done {
				t.Fatalf("%v: flow %d incomplete", scheme, f.ID)
			}
		}
		if n.PktsInjected != n.PktsDelivered+n.TotalDrops {
			t.Fatalf("%v: injected %d != delivered %d + dropped %d",
				scheme, n.PktsInjected, n.PktsDelivered, n.TotalDrops)
		}
		if n.DataBytesDelivered > n.DataBytesInjected {
			t.Fatalf("%v: delivered %d data bytes > injected %d",
				scheme, n.DataBytesDelivered, n.DataBytesInjected)
		}
		var payload uint64
		for _, f := range n.Flows() {
			if n.connAt(f.ID).isParent {
				continue // MPTCP parents own no transport; subflows carry the bytes
			}
			payload += uint64(f.SizeBytes)
		}
		if n.DataBytesDelivered < payload {
			t.Fatalf("%v: delivered %d data bytes < total payload %d",
				scheme, n.DataBytesDelivered, payload)
		}
	}
}

package fluid

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"beyondft/internal/minheap"
)

// GKOptions tunes the Garg–Könemann/Fleischer max-concurrent-flow FPTAS.
type GKOptions struct {
	// Epsilon is the approximation parameter: the returned throughput is at
	// least (1−O(ε)) of optimal. Default 0.08.
	Epsilon float64
	// MaxPhases caps the number of phases as a safety valve. Default 1e6.
	MaxPhases int
	// Workers bounds the goroutines used for the per-phase dual-bound
	// distance computations (one Dijkstra per distinct commodity source,
	// read-only on the length function within the phase). 0 means
	// GOMAXPROCS. The result is identical at any worker count.
	Workers int
	// Ctx, if non-nil, is polled at every phase boundary and every
	// gkCtxPollEvery routing iterations within a phase: once it is done the
	// solver stops routing and returns the (still feasible, possibly
	// far-from-optimal) flow accumulated so far. Callers that need to
	// distinguish "converged" from "canceled" check Ctx.Err() after the
	// call — the serving daemon uses this to propagate per-request
	// deadlines and client disconnects into long solves.
	Ctx context.Context
	// WarmStart, when it has exactly one entry per arc of the network,
	// seeds the solver's dual length function from a completed solve of a
	// neighboring instance (see GKResult.Duals) instead of the uniform
	// δ/cap cold start. Entries are rescaled so the starting potential
	// D(l) matches the cold start's, so only the *shape* of the warm
	// lengths carries over; non-positive, NaN or infinite entries fall
	// back to the cold value per-arc. Warm solves terminate on the
	// explicit primal/dual gap certificate (primal ≥ (1−ε)·dual) rather
	// than the potential budget alone, so the returned throughput carries
	// the same (1−ε) guarantee as a cold solve — warm starting can only
	// change how fast it is reached, never the certificate. A wrong-length
	// or nil slice is ignored (cold start).
	WarmStart []float64
	// ExportDuals makes the result carry the final per-arc dual lengths
	// (GKResult.Duals), the state a neighboring scenario's solve warm
	// starts from.
	ExportDuals bool
	// Observer, if non-nil, receives solver progress (phase boundaries and
	// a final summary). The disabled cost is one interface nil check per
	// phase plus an integer iteration counter — no allocations
	// (BenchmarkGKObserverDisabled asserts 0 allocs/op on the hook path),
	// so PR 2's hot-path wins are untouched.
	Observer GKObserver
}

// GKObserver receives Garg–Könemann solver progress. Implementations must
// be cheap: GKPhase fires once per phase while lengths and flows are
// mid-update, so it must not call back into the solver.
type GKObserver interface {
	// GKPhase fires at every phase boundary, after the phase's dual-bound
	// update and before its routing loop: the 1-based phase number, total
	// routing Dijkstras so far, the current D(l) potential, and the best
	// dual bound observed (OPT ≤ dualBound).
	GKPhase(phase, iterations int, d, dualBound float64)
	// GKDone fires exactly once for every solve that enters the phase loop
	// (degenerate inputs — no commodities, no arcs — skip it), with the
	// final counts and the certified primal/dual pair.
	GKDone(phases, iterations int, primal, dual float64)
}

// GKTelemetry is a ready-made GKObserver for callers that want final
// numbers rather than a stream: it records the last phase snapshot and the
// done summary. Not safe for use across concurrent solves.
type GKTelemetry struct {
	Phases     int
	Iterations int
	Primal     float64
	Dual       float64
	Done       bool
}

// GKPhase implements GKObserver.
func (t *GKTelemetry) GKPhase(phase, iterations int, d, dualBound float64) {
	t.Phases, t.Iterations, t.Dual = phase, iterations, dualBound
}

// GKDone implements GKObserver.
func (t *GKTelemetry) GKDone(phases, iterations int, primal, dual float64) {
	t.Phases, t.Iterations, t.Primal, t.Dual, t.Done = phases, iterations, primal, dual, true
}

// GKResult reports the solve outcome.
type GKResult struct {
	// Throughput is the certified feasible concurrent-flow fraction: every
	// commodity can simultaneously carry Throughput × its demand.
	Throughput float64
	// UpperBound is the best dual bound observed; OPT ≤ UpperBound.
	UpperBound float64
	Phases     int
	// Duals holds the final per-arc dual lengths when the solve ran with
	// ExportDuals — the warm-start seed for a neighboring scenario
	// (GKOptions.WarmStart). Nil otherwise.
	Duals []float64
}

// gkDebugCheckD, when non-nil (set only by tests), receives the
// incrementally maintained D(l) = Σ cap·length and a fresh rescan at every
// phase boundary so the incremental bookkeeping can be checked for drift.
var gkDebugCheckD func(incremental, rescan float64)

// gkCtxPollEvery is how many routing Dijkstras run between Ctx polls inside
// a phase. Phases on paper-scale instances run hundreds of routing
// iterations, so phase-boundary-only polling could overrun a deadline by a
// full phase; every-64 keeps the overrun bounded at well under a
// millisecond while the poll itself (one atomic load in context.Context
// implementations) stays invisible next to a Dijkstra.
const gkCtxPollEvery = 64

// warmDLimit bounds how far past the cold potential budget (D ≥ 1) a
// warm-started solve may keep routing while it waits for its primal/dual
// gap certificate. Warm solves on a well-matched neighbor certify within a
// phase or two of D reaching 1; a pathological seed must not loop forever,
// so past this potential the solver returns the (still certified-feasible,
// possibly weaker-than-(1−ε)) primal it has.
const warmDLimit = 64.0

// MaxConcurrentFlow approximates the maximum concurrent flow for the given
// commodities, i.e. the paper's "throughput per server" when demands are in
// server line-rate units.
func MaxConcurrentFlow(nw *Network, comms []Commodity, opt GKOptions) GKResult {
	eps := opt.Epsilon
	if eps <= 0 {
		eps = 0.08
	}
	maxPhases := opt.MaxPhases
	if maxPhases <= 0 {
		maxPhases = 1 << 20
	}
	live := comms[:0:0]
	for _, c := range comms {
		if c.Demand > 0 && c.Src != c.Dst {
			live = append(live, c)
		}
	}
	if len(live) == 0 {
		return GKResult{Throughput: math.Inf(1), UpperBound: math.Inf(1)}
	}

	m := len(nw.Arcs)
	if m == 0 {
		return GKResult{}
	}
	delta := math.Pow(float64(m)/(1-eps), -1/eps)
	length := make([]float64, m)
	// D tracks D(l) = Σ cap·length incrementally: seeded from the initial
	// lengths here, then updated in O(1) at every length bump in the routing
	// loop instead of an O(m) rescan per phase.
	D := 0.0
	for i, a := range nw.Arcs {
		length[i] = delta / a.Cap
		D += a.Cap * length[i]
	}
	// Warm start: adopt the shape of a neighboring solve's final duals,
	// rescaled to the cold starting potential D₀ = δ·m so the potential
	// budget is unchanged. Arcs the neighbor did not have (or invalid
	// entries) keep their cold value.
	warm := false
	if len(opt.WarmStart) == m {
		sum := 0.0
		for i, a := range nw.Arcs {
			if w := opt.WarmStart[i]; w > 0 && !math.IsInf(w, 1) && !math.IsNaN(w) {
				length[i] = w
			}
			sum += a.Cap * length[i]
		}
		scale := D / sum
		D = 0.0
		for i, a := range nw.Arcs {
			length[i] *= scale
			D += a.Cap * length[i]
		}
		warm = true
	}
	flow := make([]float64, m)           // total flow per arc (all commodities)
	routed := make([]float64, len(live)) // total routed per commodity

	// Distinct commodity sources, in first-appearance order; the per-phase
	// dual bound needs one full Dijkstra per distinct source.
	srcIndex := map[int]int{}
	var sources []int
	srcOf := make([]int, len(live)) // live[j].Src's index into sources
	for j, c := range live {
		k, ok := srcIndex[c.Src]
		if !ok {
			k = len(sources)
			srcIndex[c.Src] = k
			sources = append(sources, c.Src)
		}
		srcOf[j] = k
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	states := make([]*spState, workers)
	for w := range states {
		states[w] = newSPState(nw)
	}
	srcDist := make([][]float64, len(sources))
	for k := range srcDist {
		srcDist[k] = make([]float64, nw.N)
	}

	dualBound := math.Inf(1)
	sp := states[0] // routing reuses worker 0's scratch between phases
	parent := make([]int32, nw.N)
	phases := 0
	iters := 0 // routing Dijkstras, reported through the observer
	canceled := false
	for phases < maxPhases {
		if D >= 1 {
			// Cold solves stop on the potential budget: the classic analysis
			// certifies (1−O(ε)) at D = 1. A warm seed reshapes the length
			// function, so a warm solve instead runs until the explicit gap
			// certificate closes (primal ≥ (1−ε)·dual), with warmDLimit as
			// the safety valve against pathological seeds.
			if !warm || D >= warmDLimit {
				break
			}
			if p := primalValue(nw, live, flow, routed); !math.IsInf(dualBound, 1) && p >= (1-eps)*dualBound {
				break
			}
		}
		if opt.Ctx != nil && opt.Ctx.Err() != nil {
			break // canceled: fall through to the primal value routed so far
		}
		phases++
		if gkDebugCheckD != nil {
			rescan := 0.0
			for i, a := range nw.Arcs {
				rescan += a.Cap * length[i]
			}
			gkDebugCheckD(D, rescan)
		}
		// Dual bound for this phase: D(l) / Σ_j d_j·dist_l(j). Lengths are
		// read-only within this step, so the per-source Dijkstras fan out
		// across the workers; each writes only its own srcDist row and the
		// reduction below runs in fixed commodity order, so the result is
		// identical at any worker count.
		parallelSources(workers, len(sources), func(w, k int) {
			states[w].dijkstra(sources[k], length, nil, srcDist[k], -1)
		})
		z := 0.0
		for j, c := range live {
			z += c.Demand * srcDist[srcOf[j]][c.Dst]
		}
		if z > 0 {
			if b := D / z; b < dualBound {
				dualBound = b
			}
		}
		if opt.Observer != nil {
			opt.Observer.GKPhase(phases, iters, D, dualBound)
		}
		// Early exit once the certified primal is within ε of the dual bound.
		if phases%8 == 0 {
			if p := primalValue(nw, live, flow, routed); p >= (1-eps)*dualBound {
				break
			}
		}
		// Route each commodity's full demand this phase.
	routing:
		for j, c := range live {
			remaining := c.Demand
			for remaining > 1e-15 {
				// Mid-phase deadline poll: a phase routes hundreds of
				// Dijkstras on paper-scale instances, so waiting for the
				// phase boundary could overrun a deadline by a full phase.
				if opt.Ctx != nil && iters > 0 && iters%gkCtxPollEvery == 0 && opt.Ctx.Err() != nil {
					canceled = true
					break routing
				}
				// Only dist[c.Dst] and the parent chain behind it are
				// needed, so the Dijkstra stops as soon as dst settles.
				d := sp.dijkstra(c.Src, length, parent, nil, c.Dst)
				iters++
				if math.IsInf(d[c.Dst], 1) {
					if opt.Observer != nil {
						opt.Observer.GKDone(phases, iters, 0, 0)
					}
					return GKResult{Throughput: 0, UpperBound: 0, Phases: phases}
				}
				// Bottleneck along the path.
				bottleneck := math.Inf(1)
				for v := c.Dst; v != c.Src; {
					ai := int(parent[v])
					if nw.Arcs[ai].Cap < bottleneck {
						bottleneck = nw.Arcs[ai].Cap
					}
					v = nw.Arcs[ai].From
				}
				f := remaining
				if bottleneck < f {
					f = bottleneck
				}
				for v := c.Dst; v != c.Src; {
					ai := int(parent[v])
					flow[ai] += f
					old := length[ai]
					nl := old * (1 + eps*f/nw.Arcs[ai].Cap)
					length[ai] = nl
					D += nw.Arcs[ai].Cap * (nl - old)
					v = nw.Arcs[ai].From
				}
				routed[j] += f
				remaining -= f
			}
		}
		if canceled {
			break
		}
	}

	thr := primalValue(nw, live, flow, routed)
	if thr > dualBound {
		thr = dualBound // numerical safety: primal cannot beat the dual bound
	}
	if opt.Observer != nil {
		opt.Observer.GKDone(phases, iters, thr, dualBound)
	}
	res := GKResult{Throughput: thr, UpperBound: dualBound, Phases: phases}
	if opt.ExportDuals {
		res.Duals = append([]float64(nil), length...)
	}
	return res
}

// parallelSources runs f(worker, k) for k in [0,n) on up to `workers`
// goroutines, giving each a stable worker id for its scratch spState.
func parallelSources(workers, n int, f func(worker, k int)) {
	if workers <= 1 || n <= 1 {
		for k := 0; k < n; k++ {
			f(0, k)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= n {
					return
				}
				f(w, k)
			}
		}(w)
	}
	wg.Wait()
}

// primalValue returns the certified feasible concurrent-flow fraction for
// the accumulated (possibly capacity-violating) flow: scale flows uniformly
// so the most-loaded arc is exactly at capacity, then take the minimum over
// commodities of scaled-routed/demand.
func primalValue(nw *Network, live []Commodity, flow, routed []float64) float64 {
	over := 0.0
	for i, a := range nw.Arcs {
		if u := flow[i] / a.Cap; u > over {
			over = u
		}
	}
	thr := math.Inf(1)
	for j, c := range live {
		frac := routed[j] / c.Demand
		if over > 0 {
			frac /= over
		}
		if frac < thr {
			thr = frac
		}
	}
	if math.IsInf(thr, 1) || math.IsNaN(thr) {
		return 0
	}
	return thr
}

// spState holds reusable Dijkstra buffers for arc-length shortest paths.
type spState struct {
	nw   *Network
	dist []float64
	done []bool
	heap minheap.Heap
}

func newSPState(nw *Network) *spState {
	return &spState{
		nw:   nw,
		dist: make([]float64, nw.N),
		done: make([]bool, nw.N),
		heap: make(minheap.Heap, 0, nw.N),
	}
}

// dijkstra computes arc-length shortest paths from src. Distances are
// written into dist if non-nil, else into the shared s.dist buffer (valid
// until the next call; callers that cache must copy). If parent is non-nil,
// parent[v] is set to the arc index entering v on a shortest path (−1 at
// src/unreachable; only settled nodes have final parents). If target >= 0
// the search stops once target is settled — dist[target] and the parent
// chain from target back to src are final, other entries may be
// unsettled upper bounds.
func (s *spState) dijkstra(src int, length []float64, parent []int32, dist []float64, target int) []float64 {
	nw := s.nw
	if dist == nil {
		dist = s.dist
	}
	for i := range dist {
		dist[i] = math.Inf(1)
		s.done[i] = false
		if parent != nil {
			parent[i] = -1
		}
	}
	dist[src] = 0
	h := &s.heap
	h.Reset()
	h.Push(minheap.Item{Node: int32(src), Pri: 0})
	for h.Len() > 0 {
		it := h.Pop()
		u := int(it.Node)
		if s.done[u] {
			continue
		}
		s.done[u] = true
		if u == target {
			break
		}
		du := dist[u]
		for ai := nw.arcStart[u]; ai < nw.arcStart[u+1]; ai++ {
			to := nw.arcTo[ai]
			if s.done[to] {
				continue
			}
			nd := du + length[ai]
			if nd < dist[to] {
				dist[to] = nd
				if parent != nil {
					parent[to] = int32(ai)
				}
				h.Push(minheap.Item{Node: to, Pri: nd})
			}
		}
	}
	return dist
}

package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"beyondft/internal/obs"
)

// ForwardHeader marks a request that has already been forwarded once by a
// peer. Receivers must serve it locally, whatever their own ring says: two
// nodes that momentarily disagree on membership could otherwise bounce a
// request between themselves forever. The value is the origin node's ID,
// for logs.
const ForwardHeader = "X-Beyondftd-Forwarded"

// Forwarded reports whether r arrived via a peer forward (loop guard).
func Forwarded(r *http.Request) bool { return r.Header.Get(ForwardHeader) != "" }

var (
	// ErrSelf reports that forwarding bottomed out on this node itself (the
	// key's live owner chain leads here): the caller should compute locally.
	ErrSelf = errors.New("cluster: key is owned locally")
	// ErrPeerSaturated reports that the key's owner shed the forwarded
	// request with 429. The caller should propagate the shed rather than
	// compute locally — if the fleet is out of capacity, absorbing the
	// owner's rejections locally would defeat admission control.
	ErrPeerSaturated = errors.New("cluster: owner saturated")
)

// maxForwardResponse caps how many bytes a peer response may carry (a
// defensive bound; real envelopes are a few KB).
const maxForwardResponse = 64 << 20

// Config configures a Cluster.
type Config struct {
	// Self is this node's advertised base URL; it must appear in Peers
	// (it is added if absent).
	Self string
	// Peers are the base URLs of the initial ring members, including Self.
	// With gossip enabled (GossipInterval > 0) they are only seeds: the
	// membership protocol takes over and the ring tracks live nodes.
	Peers []string
	// VNodes is the number of virtual nodes per peer (0 = DefaultVNodes).
	VNodes int
	// Replication is the number of distinct ring owners per key (R). All R
	// owners serve the key locally; fresh computes replicate to the sibling
	// owners, so any R-1 node deaths lose no cached bytes. 0 or 1 means
	// single ownership (the pre-replication behavior).
	Replication int
	// ForwardTimeout bounds one forward attempt to one peer (0 = 15s).
	ForwardTimeout time.Duration
	// Retries is how many extra attempts a transiently failing peer gets
	// before the forward hedges to the next owner (< 0 = 0; default 1).
	Retries int
	// Backoff is the sleep before the first retry, doubling per retry
	// (0 = 25ms).
	Backoff time.Duration
	// Hedge is how many successor owners to try after the R-owner set
	// (0 = 1; the owners plus one hedge survive any single node failure).
	Hedge int
	// DownFor is how long a peer is skipped after a failed forward before
	// being probed again (0 = 1s). Skipping turns a dead peer's cost from
	// one timeout per request into one per DownFor.
	DownFor time.Duration
	// GossipInterval is the membership gossip period; 0 disables gossip and
	// freezes membership at Peers (plus explicit SetPeers calls).
	GossipInterval time.Duration
	// SuspectAfter is how long an alive member may go unrefreshed before it
	// is suspected (0 = 5×GossipInterval).
	SuspectAfter time.Duration
	// DeadAfter is how long a suspect stays suspected before it is declared
	// dead and leaves the ring (0 = 5×GossipInterval).
	DeadAfter time.Duration
	// AntiEntropyInterval is the period of the background re-replication
	// pass (0 = 10×GossipInterval, or 30s without gossip). Each pass offers
	// every locally cached entry to the key's current owners and pushes the
	// ones they lack, so membership changes restore the replication factor
	// without operator intervention.
	AntiEntropyInterval time.Duration
	// Registry receives cluster metrics (nil disables).
	Registry *obs.Registry
	// Client overrides the forwarding HTTP client (tests); nil builds one.
	Client *http.Client
	// Logf, if non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// peerHealth is one peer's failure-detector state on the forwarding path
// (distinct from gossip membership: this reacts per-request within
// milliseconds; gossip converges the ring within seconds).
type peerHealth struct {
	until        time.Time // skip the peer until this instant
	probing      bool      // one probe request is in flight past the window
	probeExpires time.Time // safety valve: a stuck probe frees the slot here
}

// Cluster is one node's view of the fleet: the shared ring, the forwarding
// transport, per-peer health, gossip membership and the replication engine.
type Cluster struct {
	cfg     Config
	self    string
	ring    atomic.Pointer[Ring]
	client  *http.Client
	metrics *Metrics
	mem     *Membership
	repl    *replicator

	// entries enumerates this node's cached results for anti-entropy
	// (set by the serving layer via SetEntriesSource; nil disables).
	entries atomic.Pointer[EntriesFunc]

	// ringChanged wakes the anti-entropy loop after a membership change.
	ringChanged chan struct{}

	lifecycle sync.Mutex
	stop      context.CancelFunc
	loops     sync.WaitGroup

	mu   sync.Mutex
	down map[string]*peerHealth
}

// EntriesFunc enumerates local cache entries; yield returning false stops
// the walk early.
type EntriesFunc func(ctx context.Context, yield func(Entry) bool) error

// New validates cfg and builds a node's cluster view. Background loops
// (gossip, replication pushes, anti-entropy) start with Start.
func New(cfg Config) (*Cluster, error) {
	cfg.Self = normalizeURL(cfg.Self)
	if cfg.Self == "" {
		return nil, errors.New("cluster: empty self URL")
	}
	peers := make([]string, 0, len(cfg.Peers)+1)
	for _, p := range cfg.Peers {
		if u := normalizeURL(p); u != "" {
			peers = append(peers, u)
		}
	}
	found := false
	for _, p := range peers {
		if p == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		peers = append(peers, cfg.Self)
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 1
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 15 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 1
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 25 * time.Millisecond
	}
	if cfg.Hedge <= 0 {
		cfg.Hedge = 1
	}
	if cfg.DownFor <= 0 {
		cfg.DownFor = time.Second
	}
	if cfg.GossipInterval > 0 {
		if cfg.SuspectAfter <= 0 {
			cfg.SuspectAfter = 5 * cfg.GossipInterval
		}
		if cfg.DeadAfter <= 0 {
			cfg.DeadAfter = 5 * cfg.GossipInterval
		}
	}
	if cfg.AntiEntropyInterval <= 0 {
		if cfg.GossipInterval > 0 {
			cfg.AntiEntropyInterval = 10 * cfg.GossipInterval
		} else {
			cfg.AntiEntropyInterval = 30 * time.Second
		}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	c := &Cluster{
		cfg:         cfg,
		self:        cfg.Self,
		client:      client,
		metrics:     NewMetrics(cfg.Registry),
		down:        map[string]*peerHealth{},
		ringChanged: make(chan struct{}, 1),
	}
	c.repl = newReplicator(c)
	if cfg.GossipInterval > 0 {
		seeds := make([]string, 0, len(peers))
		for _, p := range peers {
			if p != cfg.Self {
				seeds = append(seeds, p)
			}
		}
		c.mem = NewMembership(MembershipConfig{
			Self:         cfg.Self,
			Seeds:        seeds,
			SuspectAfter: cfg.SuspectAfter,
			DeadAfter:    cfg.DeadAfter,
			Logf:         cfg.Logf,
		})
		c.mem.OnChange(func(live []string) {
			c.metrics.Suspects.Set(int64(c.mem.SuspectCount()))
			c.SetPeers(live)
		})
		c.mem.SetExchange(c.gossipExchange)
	}
	c.setRing(NewRing(peers, cfg.VNodes))
	return c, nil
}

// normalizeURL canonicalizes a peer address: trims whitespace and trailing
// slashes and defaults the scheme to http, so "host:8080", "host:8080/" and
// "http://host:8080" are one ring member, not three.
func normalizeURL(u string) string {
	u = strings.TrimRight(strings.TrimSpace(u), "/")
	if u == "" {
		return ""
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}

// Self returns this node's advertised URL.
func (c *Cluster) Self() string { return c.self }

// Peers returns the current ring membership (sorted).
func (c *Cluster) Peers() []string { return c.ring.Load().Nodes() }

// Metrics returns the cluster metric set.
func (c *Cluster) Metrics() *Metrics { return c.metrics }

// Replication returns the configured owners-per-key factor R.
func (c *Cluster) Replication() int { return c.cfg.Replication }

// Membership returns the gossip membership table (nil when gossip is off).
func (c *Cluster) Membership() *Membership { return c.mem }

// Owner returns the primary ring owner of key.
func (c *Cluster) Owner(key string) string { return c.ring.Load().Owner(key) }

// Owners returns the key's R distinct replica owners in ring order; the
// first is the primary (the node that computes fresh results).
func (c *Cluster) Owners(key string) []string {
	return c.ring.Load().Owners(key, c.cfg.Replication)
}

// Owns reports whether this node is any of key's R replica owners.
func (c *Cluster) Owns(key string) bool {
	for _, o := range c.Owners(key) {
		if o == c.self {
			return true
		}
	}
	return false
}

// SetEntriesSource wires the local cache walk used by anti-entropy (the
// serving layer owns the caches, the cluster owns the schedule).
func (c *Cluster) SetEntriesSource(fn EntriesFunc) {
	if fn == nil {
		c.entries.Store(nil)
		return
	}
	c.entries.Store(&fn)
}

// SetPeers replaces the ring membership (Self is always retained).
// Ownership moves deterministically and minimally (see ring_test.go), so a
// rolling membership change re-homes only its share of the keyspace. With
// gossip enabled this is called by the membership protocol; calling it
// directly also works (static deployments, tests).
func (c *Cluster) SetPeers(peers []string) {
	all := make([]string, 0, len(peers)+1)
	for _, p := range peers {
		if u := normalizeURL(p); u != "" {
			all = append(all, u)
		}
	}
	all = append(all, c.self)
	c.setRing(NewRing(all, c.cfg.VNodes))
}

func (c *Cluster) setRing(r *Ring) {
	c.ring.Store(r)
	c.metrics.setRing(r)
	c.logf("cluster: %s self=%s", r, c.self)
	select {
	case c.ringChanged <- struct{}{}:
	default:
	}
}

// Start launches the background loops: replication push workers, the
// gossip membership loop (when configured) and the anti-entropy pass.
// Stop (or nothing, for a process-lifetime cluster) ends them.
func (c *Cluster) Start() {
	c.lifecycle.Lock()
	defer c.lifecycle.Unlock()
	if c.stop != nil {
		return // already started
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.stop = cancel
	c.repl.start(ctx, &c.loops)
	if c.mem != nil {
		c.loops.Add(1)
		go func() {
			defer c.loops.Done()
			c.gossipLoop(ctx)
		}()
	}
	c.loops.Add(1)
	go func() {
		defer c.loops.Done()
		c.antiEntropyLoop(ctx)
	}()
}

// Stop ends the background loops and waits for them to exit. Safe to call
// multiple times or without Start.
func (c *Cluster) Stop() {
	c.lifecycle.Lock()
	stop := c.stop
	c.stop = nil
	c.lifecycle.Unlock()
	if stop != nil {
		stop()
		c.loops.Wait()
	}
}

// gossipLoop drives the SWIM-lite membership rounds.
func (c *Cluster) gossipLoop(ctx context.Context) {
	t := time.NewTicker(c.cfg.GossipInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.mem.Tick(ctx)
		}
	}
}

// Forward sends body to path on one of key's owners and returns the peer's
// response body. Candidates are the key's R replica owners followed by
// Hedge successors; a transiently failing candidate is retried with
// backoff, then the forward hedges down the chain. It returns ErrSelf when
// the live candidate chain reaches this node (compute locally),
// ErrPeerSaturated when the owner shed the request, and a joined error when
// every candidate failed (the caller falls back to computing locally —
// availability over strict ownership).
func (c *Cluster) Forward(ctx context.Context, key, path string, body []byte) (data []byte, peer string, err error) {
	owners := c.ring.Load().Owners(key, c.cfg.Replication+c.cfg.Hedge)
	var lastErr error
	for i, p := range owners {
		if p == c.self {
			return nil, "", ErrSelf
		}
		if !c.usable(p) {
			lastErr = fmt.Errorf("peer %s marked down", p)
			continue
		}
		// Count a hedge only when a non-first candidate is actually
		// attempted; skipping a down-marked peer is not a hedge attempt.
		if i > 0 {
			c.metrics.Hedges.Add(1)
		}
		data, err := c.attempt(ctx, p, path, body)
		if err == nil {
			return data, p, nil
		}
		if errors.Is(err, ErrPeerSaturated) {
			return nil, p, err
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	c.metrics.Fallbacks.Add(1)
	if lastErr == nil {
		lastErr = errors.New("no candidate owners")
	}
	return nil, "", fmt.Errorf("cluster: forward key=%.12s…: %w", key, lastErr)
}

// attempt tries one peer up to 1+Retries times with exponential backoff,
// marking the peer down when all attempts fail so subsequent forwards skip
// straight to hedging until the peer has had DownFor to recover. A failure
// caused by the *caller's* context (cancel or deadline) never down-marks:
// the peer may be perfectly healthy, and blaming it would make every
// impatient client poison the hedge chain for DownFor.
func (c *Cluster) attempt(ctx context.Context, peer, path string, body []byte) ([]byte, error) {
	var lastErr error
	backoff := c.cfg.Backoff
	for try := 0; try <= c.cfg.Retries; try++ {
		if try > 0 {
			c.metrics.Retries.Add(1)
			select {
			case <-time.After(backoff):
				backoff *= 2
			case <-ctx.Done():
				c.probeRelease(peer)
				return nil, ctx.Err()
			}
		}
		c.metrics.Forwards(peer).Add(1)
		data, retryable, err := c.once(ctx, peer, path, body)
		if err == nil {
			c.markUp(peer)
			return data, nil
		}
		c.metrics.ForwardErrors(peer).Add(1)
		lastErr = err
		if !retryable || ctx.Err() != nil {
			break
		}
	}
	switch {
	case errors.Is(lastErr, ErrPeerSaturated):
		// A shed proves the peer is alive, just busy.
		c.markUp(peer)
	case ctx.Err() != nil:
		// Caller gave up; release any probe slot but don't blame the peer.
		c.probeRelease(peer)
	default:
		c.markDown(peer, lastErr)
	}
	return nil, lastErr
}

// once performs a single forward attempt under the per-peer timeout.
func (c *Cluster) once(ctx context.Context, peer, path string, body []byte) (data []byte, retryable bool, err error) {
	tctx, cancel := context.WithTimeout(ctx, c.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, c.self)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, true, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardResponse))
		if err != nil {
			return nil, true, fmt.Errorf("peer %s: read response: %w", peer, err)
		}
		return data, false, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return nil, false, fmt.Errorf("peer %s: %w", peer, ErrPeerSaturated)
	default:
		io.Copy(io.Discard, resp.Body)
		// 5xx may be transient (a peer mid-drain answers 503); 4xx will not
		// improve on retry.
		return nil, resp.StatusCode >= 500, fmt.Errorf("peer %s: status %d", peer, resp.StatusCode)
	}
}

// usable reports whether a peer should be tried. Once the down-window has
// elapsed, exactly one caller wins the probe slot and carries the probe;
// everyone else keeps skipping until the probe resolves (markUp/markDown)
// or its safety expiry passes — without the gate, every concurrent request
// would pile onto a still-dead peer the instant the window lapsed.
func (c *Cluster) usable(peer string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, bad := c.down[peer]
	if !bad {
		return true
	}
	now := time.Now()
	if now.Before(st.until) {
		return false
	}
	if st.probing && now.Before(st.probeExpires) {
		return false
	}
	st.probing = true
	st.probeExpires = now.Add(c.probeBudget())
	return true
}

// healthy is the read-only counterpart of usable: it never claims the probe
// slot, so background passes (anti-entropy, sibling fetches) can consult
// peer health without starving the forward path's single probe.
func (c *Cluster) healthy(peer string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, bad := c.down[peer]
	return !bad || time.Now().After(st.until)
}

// probeBudget bounds how long a probe may hold the slot before another
// caller may try: the worst-case attempt time plus slack.
func (c *Cluster) probeBudget() time.Duration {
	return c.cfg.ForwardTimeout*time.Duration(1+c.cfg.Retries) + c.cfg.DownFor
}

// probeRelease frees the probe slot without re-arming the down window, for
// probes that ended without a verdict (caller cancellation).
func (c *Cluster) probeRelease(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.down[peer]; ok {
		st.probing = false
	}
}

func (c *Cluster) markDown(peer string, cause error) {
	c.mu.Lock()
	_, already := c.down[peer]
	c.down[peer] = &peerHealth{until: time.Now().Add(c.cfg.DownFor)}
	c.mu.Unlock()
	if !already {
		c.metrics.Down(peer).Add(1)
		c.logf("cluster: peer %s down for %s: %v", peer, c.cfg.DownFor, cause)
	}
}

func (c *Cluster) markUp(peer string) {
	c.mu.Lock()
	_, was := c.down[peer]
	delete(c.down, peer)
	c.mu.Unlock()
	if was {
		c.logf("cluster: peer %s back up", peer)
	}
}

func (c *Cluster) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Package graph provides the core graph data structure and algorithms used
// by the topology generators and the fluid-flow throughput engine: shortest
// paths (BFS and Dijkstra), Yen's k-shortest paths, spectral-gap estimation,
// matching heuristics, and Moore-bound path-length lower bounds.
//
// Graphs here model switch-level network topologies: undirected, simple
// (no self-loops; parallel edges are modelled as integer edge multiplicity,
// which corresponds to trunked links between a switch pair).
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// Graph is an undirected multigraph on nodes 0..N-1. Edge multiplicity m
// between a node pair models m parallel unit-capacity cables.
type Graph struct {
	n   int
	adj []map[int]int // adj[u][v] = multiplicity
	m   int           // total edge count (counting multiplicity)

	// frozen caches the CSR view built by Frozen(); mutations invalidate it.
	// frozenMu makes concurrent Frozen() calls safe (mutation stays
	// single-writer, as for the maps above).
	frozenMu sync.Mutex
	frozen   *CSR
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	adj := make([]map[int]int, n)
	for i := range adj {
		adj[i] = make(map[int]int)
	}
	return &Graph{n: n, adj: adj}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges, counting multiplicity.
func (g *Graph) M() int { return g.m }

// AddEdge adds one undirected edge between u and v. Parallel edges
// accumulate multiplicity. Self-loops are rejected.
func (g *Graph) AddEdge(u, v int) {
	g.AddEdgeMulti(u, v, 1)
}

// AddEdgeMulti adds an undirected edge with the given multiplicity.
func (g *Graph) AddEdgeMulti(u, v, mult int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if mult <= 0 {
		panic("graph: non-positive multiplicity")
	}
	g.adj[u][v] += mult
	g.adj[v][u] += mult
	g.m += mult
	g.invalidate()
}

func (g *Graph) invalidate() {
	g.frozenMu.Lock()
	g.frozen = nil
	g.frozenMu.Unlock()
}

// RemoveEdge removes one unit of multiplicity from edge (u,v).
// It reports whether an edge existed.
func (g *Graph) RemoveEdge(u, v int) bool {
	if g.adj[u][v] == 0 {
		return false
	}
	g.adj[u][v]--
	g.adj[v][u]--
	if g.adj[u][v] == 0 {
		delete(g.adj[u], v)
		delete(g.adj[v], u)
	}
	g.m--
	g.invalidate()
	return true
}

// HasEdge reports whether at least one edge connects u and v.
func (g *Graph) HasEdge(u, v int) bool { return g.adj[u][v] > 0 }

// Multiplicity returns the number of parallel edges between u and v.
func (g *Graph) Multiplicity(u, v int) int { return g.adj[u][v] }

// Degree returns the degree of u, counting multiplicity.
func (g *Graph) Degree(u int) int {
	d := 0
	for _, mult := range g.adj[u] {
		d += mult
	}
	return d
}

// Neighbors returns the distinct neighbors of u in ascending order.
func (g *Graph) Neighbors(u int) []int {
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Edge is an undirected edge with multiplicity.
type Edge struct {
	U, V int // U < V
	Mult int
}

// Edges returns all distinct undirected edges (U < V) in deterministic order
// (ascending U, then V), read off the frozen CSR view without per-node map
// walks and sorts.
func (g *Graph) Edges() []Edge {
	c := g.Frozen()
	out := make([]Edge, 0, len(c.neighbor)/2)
	for u := 0; u < c.n; u++ {
		lo, hi := c.rowStart[u], c.rowStart[u+1]
		for k := lo; k < hi; k++ {
			if v := c.neighbor[k]; int(v) > u {
				out = append(out, Edge{U: u, V: int(v), Mult: int(c.mult[k])})
			}
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for v, mult := range g.adj[u] {
			if v > u {
				c.AddEdgeMulti(u, v, mult)
			}
		}
	}
	return c
}

// IsRegular reports whether every node has the same degree, and that degree.
func (g *Graph) IsRegular() (int, bool) {
	if g.n == 0 {
		return 0, true
	}
	d := g.Degree(0)
	for u := 1; u < g.n; u++ {
		if g.Degree(u) != d {
			return 0, false
		}
	}
	return d, true
}

// Connected reports whether the graph is connected (vacuously true for n<=1).
func (g *Graph) Connected() bool {
	return g.Frozen().Connected()
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.n, g.m)
}

package lp

import (
	"math"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimpleMaximization(t *testing.T) {
	// max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18  -> x=2, y=6, obj=36
	p := New(2)
	p.Maximize(0, 3)
	p.Maximize(1, 5)
	p.AddConstraint([]float64{1, 0}, LE, 4)
	p.AddConstraint([]float64{0, 2}, LE, 12)
	p.AddConstraint([]float64{3, 2}, LE, 18)
	obj, x, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(obj, 36, 1e-6) {
		t.Fatalf("obj = %v, want 36", obj)
	}
	if !almostEq(x[0], 2, 1e-6) || !almostEq(x[1], 6, 1e-6) {
		t.Fatalf("x = %v, want [2 6]", x)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// max x + y st x + y == 5, x <= 3 -> obj = 5
	p := New(2)
	p.Maximize(0, 1)
	p.Maximize(1, 1)
	p.AddConstraint([]float64{1, 1}, EQ, 5)
	p.AddConstraint([]float64{1, 0}, LE, 3)
	obj, _, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(obj, 5, 1e-6) {
		t.Fatalf("obj = %v, want 5", obj)
	}
}

func TestGEConstraints(t *testing.T) {
	// max -x st x >= 2 (i.e. min x) -> obj = -2
	p := New(1)
	p.Maximize(0, -1)
	p.AddConstraint([]float64{1}, GE, 2)
	obj, x, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(obj, -2, 1e-6) || !almostEq(x[0], 2, 1e-6) {
		t.Fatalf("obj=%v x=%v, want -2, [2]", obj, x)
	}
}

func TestInfeasible(t *testing.T) {
	p := New(1)
	p.Maximize(0, 1)
	p.AddConstraint([]float64{1}, LE, 1)
	p.AddConstraint([]float64{1}, GE, 2)
	_, _, err := p.Solve()
	if err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	p := New(1)
	p.Maximize(0, 1)
	p.AddConstraint([]float64{-1}, LE, 0) // x >= 0 only
	_, _, err := p.Solve()
	if err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestNegativeRHS(t *testing.T) {
	// max x st -x <= -2, x <= 5 -> x in [2,5], obj 5.
	p := New(1)
	p.Maximize(0, 1)
	p.AddConstraint([]float64{-1}, LE, -2)
	p.AddConstraint([]float64{1}, LE, 5)
	obj, _, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(obj, 5, 1e-6) {
		t.Fatalf("obj = %v, want 5", obj)
	}
}

func TestDegenerate(t *testing.T) {
	// Degenerate vertex: several constraints meet at the optimum.
	p := New(2)
	p.Maximize(0, 1)
	p.Maximize(1, 1)
	p.AddConstraint([]float64{1, 0}, LE, 1)
	p.AddConstraint([]float64{0, 1}, LE, 1)
	p.AddConstraint([]float64{1, 1}, LE, 2)
	obj, _, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(obj, 2, 1e-6) {
		t.Fatalf("obj = %v, want 2", obj)
	}
}

func TestMaxFlowAsLP(t *testing.T) {
	// Max flow on a diamond: s->a (cap 3), s->b (cap 2), a->t (2), b->t (3),
	// a->b (1). Max flow = 4 (a->t 2, plus b->t min(2+1,3)=... s->a 3 limited
	// by a->t 2 + a->b 1 = 3; total = min: s side 5, t side 5, but a->t 2 and
	// b->t 3 with b receiving 2+1=3 -> 2 + 3 = 5? s->a 3: a sends 2 to t and
	// 1 to b; b has 2 from s + 1 = 3 to t. Total = 5.
	// Variables: f_sa, f_sb, f_at, f_bt, f_ab.
	p := New(5)
	caps := []float64{3, 2, 2, 3, 1}
	for i, c := range caps {
		row := make([]float64, 5)
		row[i] = 1
		p.AddConstraint(row, LE, c)
	}
	// Conservation at a: f_sa = f_at + f_ab; at b: f_sb + f_ab = f_bt.
	p.AddConstraint([]float64{1, 0, -1, 0, -1}, EQ, 0)
	p.AddConstraint([]float64{0, 1, 0, -1, 1}, EQ, 0)
	// Maximize flow into t.
	p.Maximize(2, 1)
	p.Maximize(3, 1)
	obj, _, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(obj, 5, 1e-6) {
		t.Fatalf("max flow = %v, want 5", obj)
	}
}

func TestManyVariables(t *testing.T) {
	// max sum x_i st sum x_i <= 10, x_i <= 1 for 30 vars -> obj = 10.
	n := 30
	p := New(n)
	all := make([]float64, n)
	for i := 0; i < n; i++ {
		p.Maximize(i, 1)
		all[i] = 1
		row := make([]float64, n)
		row[i] = 1
		p.AddConstraint(row, LE, 1)
	}
	p.AddConstraint(all, LE, 10)
	obj, _, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(obj, 10, 1e-6) {
		t.Fatalf("obj = %v, want 10", obj)
	}
}

func TestSolutionSatisfiesConstraints(t *testing.T) {
	p := New(3)
	p.Maximize(0, 2)
	p.Maximize(1, 3)
	p.Maximize(2, 1)
	cons := [][]float64{
		{1, 1, 1},
		{2, 1, 0},
		{0, 1, 3},
	}
	rhs := []float64{10, 8, 9}
	for i, c := range cons {
		p.AddConstraint(c, LE, rhs[i])
	}
	_, x, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cons {
		lhs := 0.0
		for j := range c {
			lhs += c[j] * x[j]
		}
		if lhs > rhs[i]+1e-6 {
			t.Fatalf("constraint %d violated: %v > %v", i, lhs, rhs[i])
		}
	}
	for j, xv := range x {
		if xv < -1e-9 {
			t.Fatalf("x[%d] = %v negative", j, xv)
		}
	}
}

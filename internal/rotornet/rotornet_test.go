package rotornet

import (
	"math/rand"
	"testing"

	"beyondft/internal/graph"
	"beyondft/internal/sim"
	"beyondft/internal/topology"
	"beyondft/internal/workload"
)

func TestRoundRobinScheduleCoversAllPairs(t *testing.T) {
	for _, n := range []int{4, 8, 9, 16} {
		rounds := roundRobinSchedule(n)
		seen := map[[2]int]bool{}
		for r, peer := range rounds {
			// Matching property within a round.
			for i, p := range peer {
				if p == -1 {
					continue
				}
				if peer[p] != i {
					t.Fatalf("n=%d round %d: not a matching (%d->%d->%d)", n, r, i, p, peer[p])
				}
				if i < p {
					key := [2]int{i, p}
					if seen[key] {
						t.Fatalf("n=%d: pair %v appears twice", n, key)
					}
					seen[key] = true
				}
			}
		}
		want := n * (n - 1) / 2
		if len(seen) != want {
			t.Fatalf("n=%d: schedule covers %d pairs, want %d", n, len(seen), want)
		}
	}
}

func TestSingleFlowDelivers(t *testing.T) {
	cfg := DefaultConfig(8, 4, 2)
	n := NewNetwork(cfg)
	f := n.StartFlow(0, 5, 1_000_000)
	n.Eng.Run(sim.Second)
	if !f.Done {
		t.Fatalf("flow incomplete after 1s")
	}
	// 1 MB over 10G is 0.8 ms of serialization, but the flow must first
	// wait for matchings: FCT is at least one slot and at most a full
	// rotor cycle plus serialization.
	if f.FCT() < sim.Time(cfg.SlotNs) {
		t.Fatalf("FCT %v below one slot — matchings not modelled?", f.FCT())
	}
	maxNs := sim.Time(int64(len(n.matchings))*cfg.SlotNs) + 10*sim.Millisecond
	if f.FCT() > maxNs {
		t.Fatalf("FCT %v exceeds a rotor cycle + serialization (%v)", f.FCT(), maxNs)
	}
}

func TestTwoHopBeatsDirectOnlyLatency(t *testing.T) {
	run := func(twoHop bool) sim.Time {
		cfg := DefaultConfig(16, 4, 1)
		cfg.TwoHop = twoHop
		n := NewNetwork(cfg)
		f := n.StartFlow(0, 9, 10_000) // one tiny flow
		n.Eng.Run(10 * sim.Second)
		if !f.Done {
			t.Fatalf("flow incomplete (twoHop=%v)", twoHop)
		}
		return f.FCT()
	}
	direct := run(false)
	lb := run(true)
	if lb > direct {
		t.Fatalf("RotorLB latency %v should not exceed direct-only %v", lb, direct)
	}
}

func TestThroughputNearLineRateForBulk(t *testing.T) {
	// All-to-all bulk: every ToR sends to every other. Aggregate capacity is
	// Ports x rate per ToR with ~90% duty cycle; the rotor schedule visits
	// every destination, so bulk transfers should sustain high utilization.
	cfg := DefaultConfig(8, 4, 2)
	n := NewNetwork(cfg)
	const size = 5_000_000
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i != j {
				n.StartFlow(i, j, size)
			}
		}
	}
	n.Eng.Run(10 * sim.Second)
	var last sim.Time
	for _, f := range n.Flows() {
		if !f.Done {
			t.Fatalf("bulk flow incomplete")
		}
		if f.EndNs > last {
			last = f.EndNs
		}
	}
	totalBits := float64(8 * 7 * size * 8)
	gbps := totalBits / float64(last)
	// Fabric capacity: 8 ToRs x 2 ports x 10G x 0.9 duty = 144 Gbps.
	if gbps < 0.5*144 {
		t.Fatalf("bulk throughput %.1f Gbps, want >= 50%% of the 144 Gbps fabric", gbps)
	}
}

func TestDutyCycleReducesCapacity(t *testing.T) {
	run := func(reconfigNs int64) sim.Time {
		cfg := DefaultConfig(4, 2, 1)
		cfg.ReconfigNs = reconfigNs
		n := NewNetwork(cfg)
		f := n.StartFlow(0, 2, 20_000_000)
		n.Eng.Run(30 * sim.Second)
		if !f.Done {
			t.Fatalf("flow incomplete")
		}
		return f.FCT()
	}
	ideal := run(0)
	degraded := run(50_000) // 50% duty cycle
	if float64(degraded) < 1.3*float64(ideal) {
		t.Fatalf("50%% duty cycle should slow bulk transfers: %v vs %v", degraded, ideal)
	}
}

func TestSlotLatencyFloorForShortFlows(t *testing.T) {
	// RotorNet's structural weakness (§8): even an idle fabric cannot beat
	// the slot granularity for short flows.
	cfg := DefaultConfig(16, 4, 2)
	n := NewNetwork(cfg)
	f := n.StartFlow(3, 11, 1000)
	n.Eng.Run(sim.Second)
	if !f.Done {
		t.Fatalf("flow incomplete")
	}
	if f.FCT() < sim.Time(cfg.SlotNs) {
		t.Fatalf("1KB flow FCT %v beat the slot floor %v", f.FCT(), cfg.SlotNs)
	}
}

func TestExperimentRuns(t *testing.T) {
	cfg := DefaultConfig(16, 4, 2)
	n := NewNetwork(cfg)
	// PairDist needs a Topology shell: an edgeless graph with the right
	// server layout (pair sampling never touches edges).
	servers := make([]int, 16)
	for i := range servers {
		servers[i] = 4
	}
	topo := &topology.Topology{Name: "rotor-shell", G: graph.New(16), Servers: servers}
	rng := rand.New(rand.NewSource(1))
	pairs := workload.NewSkew(topo, 0.1, 0.7, rng)
	exp := &Experiment{
		Pairs:        pairs,
		Sizes:        workload.PFabricWebSearch(),
		Lambda:       300,
		MeasureStart: 20 * sim.Millisecond,
		MeasureEnd:   120 * sim.Millisecond,
		MaxSimTime:   2000 * sim.Millisecond,
		Seed:         1,
	}
	res := exp.Run(n)
	if res.MeasuredFlows < 10 {
		t.Fatalf("measured %d flows, want >= 10", res.MeasuredFlows)
	}
	if res.Overloaded {
		t.Fatalf("light load overloaded: %+v", res)
	}
	if res.AvgFCTMs <= 0 {
		t.Fatalf("bad avg FCT: %v", res.AvgFCTMs)
	}
	if res.DirectBytes == 0 {
		t.Fatalf("no direct deliveries recorded")
	}
}

func TestDeterministic(t *testing.T) {
	run := func() []sim.Time {
		cfg := DefaultConfig(8, 2, 2)
		n := NewNetwork(cfg)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 30; i++ {
			s, d := rng.Intn(8), rng.Intn(8)
			if s == d {
				continue
			}
			at := sim.Time(rng.Intn(5000)) * sim.Microsecond
			sz := int64(1000 + rng.Intn(3_000_000))
			n.Eng.Schedule(at, func() { n.StartFlow(s, d, sz) })
		}
		n.Eng.Run(20 * sim.Second)
		var out []sim.Time
		for _, f := range n.Flows() {
			out = append(out, f.EndNs)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("flow counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at flow %d", i)
		}
	}
}

package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.RunAll()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-time events executed out of insertion order: %v", got[:10])
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(100, func() { fired++ })
	e.Schedule(200, func() { fired++ })
	n := e.Run(150)
	if n != 1 || fired != 1 {
		t.Fatalf("Run(150) executed %d events, fired=%d; want 1,1", n, fired)
	}
	if e.Now() != 150 {
		t.Fatalf("Now = %d, want 150 (clock advances to the horizon)", e.Now())
	}
	e.Run(300)
	if fired != 2 {
		t.Fatalf("second event did not fire")
	}
}

func TestAfterAndCausality(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(50, func() {
		e.After(25, func() { at = e.Now() })
	})
	e.RunAll()
	if at != 75 {
		t.Fatalf("After fired at %d, want 75", at)
	}
}

func TestSchedulePastClampsToNow(t *testing.T) {
	e := NewEngine()
	var at Time = -1
	e.Schedule(100, func() {
		e.Schedule(10, func() { at = e.Now() }) // in the past
	})
	e.RunAll()
	if at != 100 {
		t.Fatalf("past-scheduled event fired at %d, want clamp to 100", at)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var recur func()
	recur = func() {
		count++
		if count < 1000 {
			e.After(1, recur)
		}
	}
	e.Schedule(0, recur)
	e.RunAll()
	if count != 1000 {
		t.Fatalf("count = %d, want 1000", count)
	}
	if e.Now() != 999 {
		t.Fatalf("Now = %d, want 999", e.Now())
	}
}

func TestDeterminismUnderRandomInsertion(t *testing.T) {
	run := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var got []int
		for i := 0; i < 500; i++ {
			i := i
			e.Schedule(Time(rng.Intn(100)), func() { got = append(got, i) })
		}
		e.RunAll()
		return got
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs with the same seed diverge at %d", i)
		}
	}
}

func TestProcessedAndPending(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func() {})
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", e.Pending())
	}
	e.RunAll()
	if e.Processed() != 10 || e.Pending() != 0 {
		t.Fatalf("Processed=%d Pending=%d, want 10,0", e.Processed(), e.Pending())
	}
}

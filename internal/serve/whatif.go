package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"beyondft/internal/fluid"
	"beyondft/internal/harness"
	"beyondft/internal/obs"
	"beyondft/internal/tm"
	"beyondft/internal/whatif"
	"beyondft/internal/workload"
)

// maxWhatifScenarios bounds how many scenarios one interactive request may
// enumerate. A full single-link sweep on an 8k-switch fabric is a batch
// workload — `runner run 'whatif*'` — not a request; the cap keeps a single
// POST from occupying a compute slot for minutes.
const maxWhatifScenarios = 4096

// WhatifRequest is the body of POST /v1/whatif: evaluate a scenario family
// (failures, expansions) against a base topology under a traffic matrix,
// with warm-started solves and the ε ladder. `?stream=1` switches the
// response to NDJSON with one line per finished scenario.
type WhatifRequest struct {
	Topo TopoSpec `json:"topo"`
	// TM is the traffic matrix family: longest-matching (default),
	// permutation, or all-to-all. Demands always live on the base racks,
	// also for rack-add scenarios (added racks contribute capacity only).
	TM string `json:"tm,omitempty"`
	// X is the fraction of active racks (default 1).
	X float64 `json:"x,omitempty"`
	// Seed drives workload randomness; independent of Topo.Seed and
	// Family.Seed. Default 1.
	Seed int64 `json:"seed,omitempty"`
	// Family selects and sizes the scenario family.
	Family whatif.FamilySpec `json:"family"`
	// Ladder tunes the ε ladder; zero values take the engine defaults.
	Ladder whatif.Ladder `json:"ladder,omitempty"`

	// Handler-injected state; unexported, so it stays out of spec() and
	// the cache key.
	metrics *Metrics
	wm      *whatif.Metrics
	cache   *harness.Cache
	stream  func(whatif.Result)
}

func (r *WhatifRequest) normalize() error {
	if err := r.Topo.normalize(); err != nil {
		return err
	}
	if r.TM == "" {
		r.TM = "longest-matching"
	}
	switch r.TM {
	case "longest-matching", "permutation", "all-to-all":
	default:
		return fmt.Errorf("unknown tm %q (want longest-matching|permutation|all-to-all)", r.TM)
	}
	if r.X == 0 {
		r.X = 1
	}
	if r.X < 0 || r.X > 1 {
		return fmt.Errorf("x=%g: need (0,1]", r.X)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if err := r.Family.Normalize(); err != nil {
		return err
	}
	return r.Ladder.Normalize()
}

// spec is the canonical cache spec of the full request (normalized JSON).
func (r *WhatifRequest) spec() string {
	data, err := json.Marshal(r)
	if err != nil {
		panic(fmt.Sprintf("serve: encode whatif spec: %v", err))
	}
	return string(data)
}

// baseSpec canonically describes everything a single scenario's result
// depends on besides its delta and ε: the base topology and traffic
// matrix. It deliberately excludes Family and Ladder, so per-scenario
// cache entries are shared across families and ladder configs that touch
// the same deltas.
func (r *WhatifRequest) baseSpec() string {
	data, err := json.Marshal(struct {
		Topo TopoSpec `json:"topo"`
		TM   string   `json:"tm"`
		X    float64  `json:"x"`
		Seed int64    `json:"seed"`
	}{r.Topo, r.TM, r.X, r.Seed})
	if err != nil {
		panic(fmt.Sprintf("serve: encode whatif base spec: %v", err))
	}
	return string(data)
}

// WhatifResult is the response payload of /v1/whatif (the `done` line of a
// streamed response).
type WhatifResult struct {
	Topology  string         `json:"topology"`
	Switches  int            `json:"switches"`
	Servers   int            `json:"servers"`
	TMName    string         `json:"tm"`
	Racks     int            `json:"racks"`
	Family    string         `json:"family"`
	Scenarios int            `json:"scenarios"`
	Report    *whatif.Report `json:"report"`
}

// run evaluates the sweep. Deterministic for a given spec, so the whole
// response is content-addressable like every other engine compute.
func (r *WhatifRequest) run(ctx context.Context) (json.RawMessage, error) {
	sp := obs.SpanFromContext(ctx)
	buildSp := sp.Child("build-topology")
	t, err := r.Topo.build()
	buildSp.End()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(r.Seed))
	racks := workload.ActiveRacks(t, r.X, r.Topo.Kind == "fattree", rng)
	serversOf := func(rack int) int { return t.Servers[rack] }
	var m *tm.TM
	switch r.TM {
	case "longest-matching":
		m = tm.LongestMatching(t.G, racks, serversOf)
	case "permutation":
		if len(racks)%2 == 1 {
			racks = racks[:len(racks)-1]
		}
		m = tm.RandomPermutation(racks, serversOf, rng)
	case "all-to-all":
		m = tm.AllToAll(racks, serversOf)
	}
	if err := m.ValidateHose(serversOf); err != nil {
		return nil, fmt.Errorf("traffic matrix violates hose model: %w", err)
	}
	scens, err := whatif.Scenarios(t.G, r.Family)
	if err != nil {
		return nil, err
	}
	if len(scens) > maxWhatifScenarios {
		return nil, fmt.Errorf("family %q enumerates %d scenarios > limit %d (run it through the batch harness)",
			r.Family.Kind, len(scens), maxWhatifScenarios)
	}
	var sc *whatif.ScenarioCache
	if r.cache != nil {
		sc = &whatif.ScenarioCache{Cache: r.cache, BaseSpec: r.baseSpec()}
	}
	rep, err := whatif.Evaluate(t.G, fluid.Commodities(m), scens, whatif.Options{
		Ladder:   r.Ladder,
		Ctx:      ctx,
		Cache:    sc,
		Metrics:  r.wm,
		Span:     sp,
		OnResult: r.stream,
	})
	if err != nil {
		return nil, err
	}
	if r.metrics != nil {
		r.metrics.GKIterations.Add(rep.Iterations)
	}
	out := WhatifResult{
		Topology:  t.Name,
		Switches:  t.NumSwitches(),
		Servers:   t.TotalServers(),
		TMName:    m.Name,
		Racks:     len(racks),
		Family:    r.Family.Kind,
		Scenarios: len(scens),
		Report:    rep,
	}
	return json.Marshal(&out)
}

// whatifStreamLine is one NDJSON line of a streamed sweep: exactly one of
// the fields is set. Scenario lines arrive in completion order (promoted
// scenarios appear twice, the fine result flagged `promoted`); the
// terminal line is either `done` or `error`.
type whatifStreamLine struct {
	Scenario *whatif.Result  `json:"scenario,omitempty"`
	Done     json.RawMessage `json:"done,omitempty"`
	Error    string          `json:"error,omitempty"`
}

func (s *Server) handleWhatif(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Add(1)
	var req WhatifRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeBadRequest(w, err)
		return
	}
	if err := req.normalize(); err != nil {
		s.writeBadRequest(w, err)
		return
	}
	req.metrics = s.metrics
	req.wm = s.whatifMetrics
	req.cache = s.engine.l2
	if r.URL.Query().Get("stream") == "1" {
		s.serveWhatifStream(w, r, &req)
		return
	}
	spec := req.spec()
	s.serveQuery(w, r, "/v1/whatif", "v1/whatif", spec, CodeSalt,
		&forward{path: "/v1/whatif", body: []byte(spec)}, req.run)
}

// serveWhatifStream runs the sweep outside the result cache (a stream
// cannot be replayed from a cache entry — though the per-scenario L2
// entries still make re-streams cheap), but inside admission control: a
// sweep is a compute like any other and must not bypass load shedding.
func (s *Server) serveWhatifStream(w http.ResponseWriter, r *http.Request, req *WhatifRequest) {
	start := time.Now()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if err := s.engine.adm.acquire(ctx); err != nil {
		if err == errSaturated {
			s.metrics.Rejected.Add(1)
		}
		s.writeEngineError(w, err)
		return
	}
	defer s.engine.adm.release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	req.stream = func(res whatif.Result) {
		// Evaluate serializes OnResult calls; encoder use is safe here.
		enc.Encode(whatifStreamLine{Scenario: &res})
		if flusher != nil {
			flusher.Flush()
		}
	}
	data, err := req.run(ctx)
	elapsed := time.Since(start)
	s.metrics.Latency("/v1/whatif").Observe(elapsed)
	if err != nil {
		// Headers (200) are already on the wire once scenario lines have
		// streamed; errors terminate the stream in-band.
		s.metrics.Errors.Add(1)
		enc.Encode(whatifStreamLine{Error: err.Error()})
		return
	}
	s.metrics.Computed.Add(1)
	enc.Encode(whatifStreamLine{Done: data})
}

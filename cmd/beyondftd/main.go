// Command beyondftd is the topology-analysis query daemon: it serves the
// experiment registry and ad-hoc what-if queries (fluid-model throughput,
// path statistics) over a JSON HTTP API, with two-tier result caching,
// request coalescing, bounded admission and first-class metrics (see
// DESIGN.md §8).
//
//	beyondftd -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/throughput \
//	     -d '{"topo":{"kind":"xpander","degree":10,"lift":12,"servers":6},"tm":"permutation","x":0.4}'
//	curl -s -X POST localhost:8080/v1/jobs/fig2/run -d '{}'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drain in-flight requests (bounded by -drain) and flush a
// final manifest.json into -out before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"beyondft/internal/cluster"
	"beyondft/internal/experiments"
	"beyondft/internal/graph"
	"beyondft/internal/serve"
	"beyondft/internal/topology"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	cacheDir := flag.String("cache", ".harness-cache", "L2 result cache directory, shared with `runner run` (empty disables)")
	l1Bytes := flag.Int64("l1-bytes", 64<<20, "in-memory L1 cache budget in bytes (0 disables)")
	l2MaxBytes := flag.Int64("l2-max-bytes", 0, "prune the disk cache under this many bytes (0 = unlimited)")
	computeWorkers := flag.Int("compute", runtime.GOMAXPROCS(0), "max concurrent computes (admission worker pool)")
	queueDepth := flag.Int("queue", 2*runtime.GOMAXPROCS(0), "admission queue depth; overflow is rejected with 429")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request compute deadline (0 = none)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain budget for in-flight requests")
	outDir := flag.String("out", "runs/serve", "directory for the final manifest.json (empty disables)")
	workers := flag.Int("workers", graph.EnvParallelism(),
		"parallel kernel workers per compute, 0 = GOMAXPROCS (default $"+graph.WorkersEnv+")")
	full := flag.Bool("full", false, "paper-scale experiment configuration (slow)")
	seed := flag.Int64("seed", 1, "base random seed for the experiment registry")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	portFile := flag.String("port-file", "", "write the bound address to this file once listening (for scripts)")
	smoke := flag.Bool("smoke", false, "self-check: boot, probe /healthz and /v1/throughput, drain, exit")
	self := flag.String("self", "", "this node's advertised base URL for cluster mode (e.g. http://10.0.0.5:8080)")
	peersFlag := flag.String("peers", "", "comma-separated peer base URLs forming the cluster ring (implies -self); with -gossip-interval these are only seeds")
	forwardTimeout := flag.Duration("forward-timeout", 15*time.Second, "per-peer forward attempt timeout in cluster mode")
	replication := flag.Int("replication", 1, "replica owners per key (R); R>1 survives node loss with no cold recomputes")
	gossipInterval := flag.Duration("gossip-interval", time.Second, "membership gossip period (0 = static -peers list, no failure detection)")
	readyGrace := flag.Duration("ready-grace", 0, "after a shutdown signal, keep serving this long with /readyz=503 before draining")
	designDir := flag.String("designs", "", "directory of *.json topology designs to register at startup (kind \"design\" in /v1/throughput)")
	flag.Parse()

	logger := log.New(os.Stderr, "beyondftd: ", log.LstdFlags|log.Lmsgprefix)
	graph.SetParallelism(*workers)

	if *designDir != "" {
		names, err := topology.LoadDesignDir(*designDir)
		if err != nil {
			logger.Fatalf("loading designs from %s: %v", *designDir, err)
		}
		if len(names) > 0 {
			logger.Printf("registered %d designs from %s: %s", len(names), *designDir, strings.Join(names, ", "))
		}
	}

	cfg := experiments.DefaultConfig()
	if *full {
		cfg = experiments.PaperConfig()
	}
	cfg.Seed = *seed

	s, err := serve.New(serve.Config{
		Experiments:    cfg,
		CacheDir:       *cacheDir,
		L1Bytes:        *l1Bytes,
		L2MaxBytes:     *l2MaxBytes,
		Workers:        *computeWorkers,
		QueueDepth:     *queueDepth,
		RequestTimeout: *timeout,
		OutDir:         *outDir,
		EnablePprof:    *pprofFlag,
		Logf:           logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}
	if err := s.Start(*addr); err != nil {
		logger.Fatal(err)
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(s.Addr()+"\n"), 0o644); err != nil {
			logger.Fatal(err)
		}
	}

	if *peersFlag != "" {
		selfURL := *self
		if selfURL == "" {
			// A usable default only when -addr binds a concrete host.
			selfURL = "http://" + s.Addr()
		}
		cl, err := cluster.New(cluster.Config{
			Self:           selfURL,
			Peers:          strings.Split(*peersFlag, ","),
			Replication:    *replication,
			ForwardTimeout: *forwardTimeout,
			GossipInterval: *gossipInterval,
			Registry:       s.Metrics().Registry(),
			Logf:           logger.Printf,
		})
		if err != nil {
			logger.Fatal(err)
		}
		s.EnableCluster(cl)
		cl.Start()
		defer cl.Stop()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *smoke {
		if err := smokeCheck(s.Addr(), logger); err != nil {
			logger.Printf("smoke: FAIL: %v", err)
			shutdown(s, *drain, logger)
			os.Exit(1)
		}
		logger.Printf("smoke: ok")
		stop()
	} else {
		<-ctx.Done()
		logger.Printf("signal received; draining (budget %s)", *drain)
	}
	if *readyGrace > 0 {
		// Flip /readyz first so load balancers and peers route away while
		// the listener still answers, then close it.
		s.StartDrain()
		logger.Printf("readyz now 503; grace %s before closing the listener", *readyGrace)
		time.Sleep(*readyGrace)
	}
	if err := shutdown(s, *drain, logger); err != nil {
		logger.Fatal(err)
	}
}

// shutdown drains in-flight requests within the budget and flushes the
// final manifest.
func shutdown(s *serve.Server, drain time.Duration, logger *log.Logger) error {
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Printf("drained cleanly")
	return nil
}

// smokeCheck is `make serve-smoke`'s payload: the curl-equivalent probes
// (GET /healthz, one POST /v1/throughput) against the just-booted daemon,
// asserting 200s.
func smokeCheck(addr string, logger *log.Logger) error {
	client := &http.Client{Timeout: 60 * time.Second}
	base := "http://" + addr
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /healthz: status %d", resp.StatusCode)
	}
	logger.Printf("smoke: GET /healthz -> %d", resp.StatusCode)

	resp, err = client.Get(base + "/readyz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /readyz: status %d", resp.StatusCode)
	}
	logger.Printf("smoke: GET /readyz -> %d", resp.StatusCode)

	body := `{"topo":{"kind":"jellyfish","n":24,"degree":5,"servers":4},"tm":"permutation","x":0.5}`
	resp, err = client.Post(base+"/v1/throughput", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/throughput: status %d", resp.StatusCode)
	}
	logger.Printf("smoke: POST /v1/throughput -> %d", resp.StatusCode)
	return nil
}

// Package topology implements the data center network topologies the paper
// evaluates: full-bandwidth and oversubscribed fat-trees, Jellyfish (random
// regular graphs), Xpander (random lifts of complete graphs), SlimFly
// (McKay–Miller–Širáň graphs) and Longhop (Cayley graphs over F₂ⁿ).
//
// A Topology is a switch-level graph plus a server attachment vector. All
// links are unit capacity (one line rate); trunked links between a switch
// pair are expressed as edge multiplicity.
package topology

import (
	"fmt"

	"beyondft/internal/graph"
)

// Topology is a static switch-level network with servers attached to
// (a subset of) switches.
type Topology struct {
	// Name identifies the topology instance, e.g. "fattree-k16".
	Name string
	// G is the switch-level network graph. Nodes are switches.
	G *graph.Graph
	// Servers[i] is the number of servers attached to switch i.
	Servers []int
	// SwitchPorts is the port count of each switch if homogeneous, else 0.
	SwitchPorts int
}

// NumSwitches returns the number of switches.
func (t *Topology) NumSwitches() int { return t.G.N() }

// TotalServers returns the total number of servers.
func (t *Topology) TotalServers() int {
	total := 0
	for _, s := range t.Servers {
		total += s
	}
	return total
}

// ToRs returns the switches that have at least one server attached,
// in ascending order.
func (t *Topology) ToRs() []int {
	var out []int
	for i, s := range t.Servers {
		if s > 0 {
			out = append(out, i)
		}
	}
	return out
}

// NetworkPorts returns the total number of switch ports used for
// switch-to-switch links (both endpoints counted).
func (t *Topology) NetworkPorts() int { return 2 * t.G.M() }

// ServerPorts returns the total number of switch ports used for servers.
func (t *Topology) ServerPorts() int { return t.TotalServers() }

// TotalPortsUsed returns all switch ports in use (network + server side).
func (t *Topology) TotalPortsUsed() int { return t.NetworkPorts() + t.ServerPorts() }

// Cables returns the number of switch-to-switch cables.
func (t *Topology) Cables() int { return t.G.M() }

// Validate checks internal consistency: the server vector matches the graph
// size, port budgets are respected when SwitchPorts > 0, and the network
// graph is connected.
func (t *Topology) Validate() error {
	if len(t.Servers) != t.G.N() {
		return fmt.Errorf("topology %s: server vector length %d != switch count %d",
			t.Name, len(t.Servers), t.G.N())
	}
	if t.SwitchPorts > 0 {
		for i := 0; i < t.G.N(); i++ {
			used := t.G.Degree(i) + t.Servers[i]
			if used > t.SwitchPorts {
				return fmt.Errorf("topology %s: switch %d uses %d ports > %d available",
					t.Name, i, used, t.SwitchPorts)
			}
		}
	}
	if !t.G.Connected() {
		return fmt.Errorf("topology %s: network graph is disconnected", t.Name)
	}
	return nil
}

// ServerID maps (switch, local index) pairs to global server IDs laid out
// switch by switch; FirstServer gives the first global ID on a switch.
func (t *Topology) FirstServer(sw int) int {
	id := 0
	for i := 0; i < sw; i++ {
		id += t.Servers[i]
	}
	return id
}

// ServerSwitch returns, for every global server ID, the switch it attaches to.
func (t *Topology) ServerSwitch() []int {
	out := make([]int, 0, t.TotalServers())
	for sw, cnt := range t.Servers {
		for j := 0; j < cnt; j++ {
			out = append(out, sw)
		}
	}
	return out
}

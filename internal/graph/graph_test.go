package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdgeMulti(2, 3, 3)
	if g.M() != 5 {
		t.Fatalf("M = %d, want 5", g.M())
	}
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Fatalf("adjacency wrong")
	}
	if g.Multiplicity(2, 3) != 3 {
		t.Fatalf("multiplicity = %d, want 3", g.Multiplicity(2, 3))
	}
	if g.Degree(2) != 4 {
		t.Fatalf("degree(2) = %d, want 4 (1 + 3 trunked)", g.Degree(2))
	}
	if !g.RemoveEdge(2, 3) || g.Multiplicity(2, 3) != 2 {
		t.Fatalf("RemoveEdge should decrement multiplicity")
	}
	if g.RemoveEdge(0, 3) {
		t.Fatalf("removing absent edge should report false")
	}
	ns := g.Neighbors(1)
	if len(ns) != 2 || ns[0] != 0 || ns[1] != 2 {
		t.Fatalf("neighbors(1) = %v", ns)
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("self loop should panic")
		}
	}()
	New(2).AddEdge(1, 1)
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Fatalf("clone mutated original")
	}
	if !c.HasEdge(0, 1) {
		t.Fatalf("clone lost edges")
	}
}

func TestConnectedAndRegular(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if g.Connected() {
		t.Fatalf("two components reported connected")
	}
	g.AddEdge(1, 2)
	if !g.Connected() {
		t.Fatalf("path graph reported disconnected")
	}
	if _, ok := g.IsRegular(); ok {
		t.Fatalf("path graph is not regular")
	}
	ring := New(5)
	for i := 0; i < 5; i++ {
		ring.AddEdge(i, (i+1)%5)
	}
	if d, ok := ring.IsRegular(); !ok || d != 2 {
		t.Fatalf("ring should be 2-regular, got %d %v", d, ok)
	}
}

func TestBFSAndDiameter(t *testing.T) {
	// Path 0-1-2-3: distances from 0 are 0,1,2,3.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	d := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3} {
		if d[i] != want {
			t.Fatalf("BFS dist[%d] = %d, want %d", i, d[i], want)
		}
	}
	if g.Diameter() != 3 {
		t.Fatalf("diameter = %d, want 3", g.Diameter())
	}
	if got := g.AvgShortestPath(); math.Abs(got-(10.0/6.0)) > 1e-12 {
		t.Fatalf("avg path = %v, want 10/6", got)
	}
}

func TestAPSPMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := New(12)
	for i := 1; i < 12; i++ {
		g.AddEdge(i, rng.Intn(i)) // random tree: connected
	}
	d := g.APSP()
	for u := 0; u < 12; u++ {
		bu := g.BFS(u)
		for v := 0; v < 12; v++ {
			if d[u][v] != bu[v] {
				t.Fatalf("APSP[%d][%d] = %d, BFS = %d", u, v, d[u][v], bu[v])
			}
			if d[u][v] != d[v][u] {
				t.Fatalf("asymmetric distances")
			}
		}
	}
}

func TestShortestPathDAGNextHops(t *testing.T) {
	// Square 0-1-2-3-0: toward dst 2, node 0 has two next hops (1 and 3).
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, (i+1)%4)
	}
	next := g.ShortestPathDAGNextHops(2)
	if len(next[0]) != 2 {
		t.Fatalf("node 0 next hops toward 2 = %v, want two", next[0])
	}
	if len(next[1]) != 1 || next[1][0] != 2 {
		t.Fatalf("node 1 next hops = %v, want [2]", next[1])
	}
	if next[2] != nil {
		t.Fatalf("destination should have no next hops")
	}
}

func TestDijkstraWeighted(t *testing.T) {
	// Triangle with a heavy direct edge: 0-2 weight 10, 0-1-2 weight 2+2.
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	w := func(u, v int) float64 {
		if (u == 0 && v == 2) || (u == 2 && v == 0) {
			return 10
		}
		return 2
	}
	dist, parent := g.Dijkstra(0, w)
	if math.Abs(dist[2]-4) > 1e-12 {
		t.Fatalf("dist[2] = %v, want 4 via node 1", dist[2])
	}
	path := PathTo(parent, 0, 2)
	if len(path) != 3 || path[1] != 1 {
		t.Fatalf("path = %v, want [0 1 2]", path)
	}
}

func TestPathToUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	_, parent := g.Dijkstra(0, func(u, v int) float64 { return 1 })
	if PathTo(parent, 0, 2) != nil {
		t.Fatalf("unreachable node should yield nil path")
	}
	p := PathTo(parent, 0, 0)
	if len(p) != 1 || p[0] != 0 {
		t.Fatalf("trivial path = %v", p)
	}
}

func TestKShortestPathsSquare(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, (i+1)%4)
	}
	paths := g.KShortestPaths(0, 2, 4)
	if len(paths) != 2 {
		t.Fatalf("got %d paths on a square, want 2", len(paths))
	}
	for _, p := range paths {
		if len(p) != 3 || p[0] != 0 || p[2] != 2 {
			t.Fatalf("bad path %v", p)
		}
	}
	if paths[0][1] == paths[1][1] {
		t.Fatalf("duplicate paths returned")
	}
}

func TestKShortestPathsLooplessAndSorted(t *testing.T) {
	g := New(6)
	edges := [][2]int{{0, 1}, {1, 5}, {0, 2}, {2, 3}, {3, 5}, {0, 4}, {4, 5}, {1, 2}}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	paths := g.KShortestPaths(0, 5, 10)
	if len(paths) < 3 {
		t.Fatalf("expected >= 3 paths, got %d", len(paths))
	}
	for i, p := range paths {
		seen := map[int]bool{}
		for _, v := range p {
			if seen[v] {
				t.Fatalf("path %v has a loop", p)
			}
			seen[v] = true
		}
		if i > 0 && len(p) < len(paths[i-1]) {
			t.Fatalf("paths not sorted by length")
		}
	}
}

func TestSecondEigenvalueCompleteGraph(t *testing.T) {
	// K_n has eigenvalues n-1 (once) and -1: |λ₂| = 1.
	n := 10
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	rng := rand.New(rand.NewSource(3))
	l2 := g.SecondEigenvalue(300, rng)
	if math.Abs(l2-1) > 0.05 {
		t.Fatalf("K10 lambda2 = %v, want ~1", l2)
	}
	if gap := g.SpectralGap(300, rng); math.Abs(gap-(float64(n-1)-1)) > 0.1 {
		t.Fatalf("spectral gap = %v, want ~%d", gap, n-2)
	}
}

func TestSecondEigenvalueRing(t *testing.T) {
	// Odd ring of n: the largest non-Perron |eigenvalue| is 2cos(π/n) —
	// a poor expander, close to d=2. (An even ring is bipartite and its
	// extreme eigenvalue is exactly −2.)
	n := 21
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	rng := rand.New(rand.NewSource(4))
	want := 2 * math.Cos(math.Pi/float64(n))
	l2 := g.SecondEigenvalue(800, rng)
	if math.Abs(l2-want) > 0.05 {
		t.Fatalf("ring lambda2 = %v, want %v", l2, want)
	}
	// Bipartite even ring: the trivial −2 eigenvalue is deflated, so the
	// estimate is the largest non-trivial |λ| = 2cos(2π/20).
	even := New(20)
	for i := 0; i < 20; i++ {
		even.AddEdge(i, (i+1)%20)
	}
	wantEven := 2 * math.Cos(2*math.Pi/20)
	if l2 := even.SecondEigenvalue(800, rng); math.Abs(l2-wantEven) > 0.05 {
		t.Fatalf("even ring lambda2 = %v, want %v (bipartite deflation)", l2, wantEven)
	}
}

func TestBipartition(t *testing.T) {
	even := New(6)
	for i := 0; i < 6; i++ {
		even.AddEdge(i, (i+1)%6)
	}
	sides, ok := even.Bipartition()
	if !ok {
		t.Fatalf("even ring is bipartite")
	}
	for i := 0; i < 6; i++ {
		if sides[i]*sides[(i+1)%6] != -1 {
			t.Fatalf("adjacent nodes on the same side")
		}
	}
	odd := New(5)
	for i := 0; i < 5; i++ {
		odd.AddEdge(i, (i+1)%5)
	}
	if _, ok := odd.Bipartition(); ok {
		t.Fatalf("odd ring is not bipartite")
	}
}

func TestMaxWeightMatchingSimple(t *testing.T) {
	// Weights favor pairing (0,3) and (1,2): w(0,3)=10, w(1,2)=10, others 1.
	nodes := []int{0, 1, 2, 3}
	w := func(a, b int) float64 {
		if (a == 0 && b == 3) || (a == 3 && b == 0) || (a == 1 && b == 2) || (a == 2 && b == 1) {
			return 10
		}
		return 1
	}
	pairs := MaxWeightMatching(nodes, w)
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs, want 2", len(pairs))
	}
	total := 0.0
	for _, p := range pairs {
		total += w(p[0], p[1])
	}
	if total != 20 {
		t.Fatalf("matching weight = %v, want 20", total)
	}
}

func TestMaxWeightMatchingGreedyTrap(t *testing.T) {
	// Greedy would take (0,1) w=10 leaving (2,3) w=1 (total 11); optimal is
	// (0,2)+(1,3) = 9+9 = 18. 2-opt must escape.
	w := map[[2]int]float64{
		{0, 1}: 10, {2, 3}: 1,
		{0, 2}: 9, {1, 3}: 9,
		{0, 3}: 1, {1, 2}: 1,
	}
	wf := func(a, b int) float64 {
		if a > b {
			a, b = b, a
		}
		return w[[2]int{a, b}]
	}
	pairs := MaxWeightMatching([]int{0, 1, 2, 3}, wf)
	total := 0.0
	for _, p := range pairs {
		total += wf(p[0], p[1])
	}
	if total < 18 {
		t.Fatalf("2-opt failed to escape greedy trap: weight %v, want 18", total)
	}
}

func TestMaxWeightMatchingOddLeavesOneUnmatched(t *testing.T) {
	pairs := MaxWeightMatching([]int{1, 2, 3, 4, 5}, func(a, b int) float64 { return 1 })
	if len(pairs) != 2 {
		t.Fatalf("odd set of 5: got %d pairs, want 2", len(pairs))
	}
}

func TestMooreBoundToyExample(t *testing.T) {
	// The §4.1 numbers: 9 nodes, degree 6 -> 1.25 average hops.
	if got := MooreAvgPathLowerBound(9, 6); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("Moore bound = %v, want 1.25", got)
	}
	if got := MooreThroughputUpperBound(9, 6, 6); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("throughput bound = %v, want 0.8", got)
	}
}

func TestMooreBoundEdgeCases(t *testing.T) {
	if MooreAvgPathLowerBound(1, 5) != 0 {
		t.Fatalf("single node bound should be 0")
	}
	if got := MooreAvgPathLowerBound(5, 4); got != 1 {
		t.Fatalf("complete-graph-capable degree: bound = %v, want 1", got)
	}
	if MooreThroughputUpperBound(100, 0, 5) != 0 {
		t.Fatalf("degree 0 should bound throughput at 0")
	}
	if MooreThroughputUpperBound(10, 64, 1) != 1 {
		t.Fatalf("huge degree should cap at 1")
	}
}

func TestMooreBoundIsActuallyALowerBound(t *testing.T) {
	// Property: every actual regular graph's average shortest path is >= the
	// Moore bound for its (n, d).
	rng := rand.New(rand.NewSource(5))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 6 + int(r.Int31n(10))
		if n%2 == 1 {
			n++
		}
		d := 3
		g := randomRegularForTest(n, d, r)
		if g == nil || !g.Connected() {
			return true // skip rare failures
		}
		return g.AvgShortestPath() >= MooreAvgPathLowerBound(n, d)-1e-9
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// randomRegularForTest builds a d-regular graph by the pairing model with
// rejection (test helper; topology.NewJellyfish is the production path).
func randomRegularForTest(n, d int, rng *rand.Rand) *Graph {
	for attempt := 0; attempt < 50; attempt++ {
		stubs := make([]int, 0, n*d)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				stubs = append(stubs, i)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		g := New(n)
		ok := true
		for i := 0; i+1 < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || g.HasEdge(u, v) {
				ok = false
				break
			}
			g.AddEdge(u, v)
		}
		if ok {
			return g
		}
	}
	return nil
}

func TestEdgesDeterministicOrder(t *testing.T) {
	g := New(5)
	g.AddEdge(3, 1)
	g.AddEdge(0, 4)
	g.AddEdge(2, 0)
	es := g.Edges()
	for i := 1; i < len(es); i++ {
		if es[i].U < es[i-1].U {
			t.Fatalf("edges not ordered: %v", es)
		}
	}
	if es[0].U != 0 || es[0].V != 2 {
		t.Fatalf("first edge = %v, want (0,2)", es[0])
	}
}

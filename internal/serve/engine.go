package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"beyondft/internal/harness"
	"beyondft/internal/obs"
)

// Source says where a response's bytes came from.
type Source string

const (
	// SourceL1 — in-memory LRU hit.
	SourceL1 Source = "l1"
	// SourceL2 — on-disk content-addressed cache hit (promoted into L1).
	SourceL2 Source = "l2"
	// SourceComputed — computed fresh by this request (and stored in both tiers).
	SourceComputed Source = "computed"
	// SourceCoalesced — served by joining an identical concurrent request's
	// compute.
	SourceCoalesced Source = "coalesced"
	// SourcePeer — fetched from the key's ring owner (cluster tier) and
	// filled into the local caches.
	SourcePeer Source = "peer"
)

// l2PruneEvery is how many fresh results land in the disk tier between
// byte-budget prunes. Pruning walks the cache directory, so doing it on
// every put would make the write path O(entries); amortizing over a batch
// keeps overshoot bounded by ~l2PruneEvery entries.
const l2PruneEvery = 64

// Engine is the serving core: a two-tier result cache (in-memory LRU over
// the harness's on-disk content-addressed cache) behind a singleflight
// group, with bounded admission in front of actual computation.
//
// The request path, cheapest to most expensive:
//
//	L1 (lock + map probe)
//	→ singleflight join (identical concurrent requests compute once)
//	→ L2 (one file read; hit repopulates L1)
//	→ admission (worker slots + bounded queue; overflow → errSaturated)
//	→ compute (stores into L2 then L1)
//
// Every tier is optional: a nil L2 serves from memory only, an L1 budget of
// zero disables memory caching, and the zero admission config still bounds
// computes to one at a time.
type Engine struct {
	l1         *harness.LRU
	l2         *harness.Cache
	l2MaxBytes int64
	adm        *admission
	flights    flightGroup
	metrics    *Metrics
	logf       func(format string, args ...any)

	l2Puts atomic.Int64

	// onFresh, when set, runs after a fresh compute's result has landed in
	// the local tiers — the cluster tier hooks replication here, so sibling
	// replica owners receive the bytes without the request waiting on them.
	onFresh atomic.Pointer[FreshHook]

	// computeStarted, when non-nil (tests only), runs in the leader
	// goroutine after admission granted a slot and before compute begins.
	// The coalescing / saturation / drain tests use it to hold a compute
	// open at a known point.
	computeStarted func(key string)
}

// FreshHook observes freshly computed results (see Engine.SetFreshHook).
type FreshHook func(key, name, spec, salt string, data json.RawMessage)

// SetFreshHook installs (or, with nil, removes) the fresh-compute observer.
// Safe to call concurrently with serving.
func (e *Engine) SetFreshHook(fn FreshHook) {
	if fn == nil {
		e.onFresh.Store(nil)
		return
	}
	e.onFresh.Store(&fn)
}

// EngineConfig configures an Engine.
type EngineConfig struct {
	// L1Bytes is the in-memory LRU budget; <= 0 disables the memory tier.
	L1Bytes int64
	// L2, if non-nil, is the on-disk tier shared with the batch harness —
	// a daemon and `runner run` pointed at the same directory see each
	// other's results.
	L2 *harness.Cache
	// L2MaxBytes, if > 0, prunes the disk tier (oldest entries first) back
	// under this budget every l2PruneEvery stores.
	L2MaxBytes int64
	// Workers bounds concurrent computes; <= 0 means 1.
	Workers int
	// QueueDepth bounds requests waiting for a compute slot; beyond it,
	// acquire fails fast with errSaturated.
	QueueDepth int
	// Metrics receives counters; nil allocates a private set.
	Metrics *Metrics
	// Logf, if non-nil, receives prune/corruption diagnostics.
	Logf func(format string, args ...any)
}

// NewEngine builds the serving core.
func NewEngine(cfg EngineConfig) *Engine {
	m := cfg.Metrics
	if m == nil {
		m = NewMetrics()
	}
	return &Engine{
		l1:         harness.NewLRU(cfg.L1Bytes),
		l2:         cfg.L2,
		l2MaxBytes: cfg.L2MaxBytes,
		adm:        newAdmission(cfg.Workers, cfg.QueueDepth),
		metrics:    m,
		logf:       cfg.Logf,
	}
}

// Metrics returns the engine's metrics set (shared with the server).
func (e *Engine) Metrics() *Metrics { return e.metrics }

// L1Stats exposes the memory tier's occupancy for /healthz.
func (e *Engine) L1Stats() harness.LRUStats { return e.l1.Stats() }

// RemoteFunc fetches a result from elsewhere in the fleet (the cluster
// tier's forward-to-owner path). Returning (nil, nil) means "not served
// remotely — compute locally". Returned data is authoritative: it is
// filled into the local cache tiers (peer fill) so the fleet warms from one
// compute. An error wrapping errSaturated aborts the request (the owner
// shed it); any other error falls back to local compute.
type RemoteFunc func(ctx context.Context) (json.RawMessage, error)

// Do returns the encoded result for the (name, spec, salt) triple,
// computing it with compute only if no tier has it and no identical request
// is already computing it. The returned key is the content address
// (harness.Key) the result is stored under; src says which tier answered.
// The returned bytes are shared with the cache and must not be mutated.
func (e *Engine) Do(ctx context.Context, name, spec, salt string,
	compute func(context.Context) (json.RawMessage, error)) (data json.RawMessage, key string, src Source, err error) {
	return e.DoRemote(ctx, name, spec, salt, nil, compute)
}

// DoRemote is Do with an optional remote stage between the cache probes and
// local compute: when this node is not the key's ring owner, remote
// forwards to the owner instead of computing, making the singleflight
// cluster-wide (the local flightGroup collapses identical local requests
// into one forward; the owner's flightGroup collapses forwards from every
// node into one compute).
//
// The work runs detached from ctx: if this caller's context expires, the
// flight keeps going for any joiners still listening and is canceled only
// when the last participant leaves (see flightGroup).
func (e *Engine) DoRemote(ctx context.Context, name, spec, salt string, remote RemoteFunc,
	compute func(context.Context) (json.RawMessage, error)) (data json.RawMessage, key string, src Source, err error) {
	sp := obs.SpanFromContext(ctx)
	key = harness.Key(name, spec, salt)
	probe := sp.Child("l1-probe")
	data, ok := e.l1.Get(key)
	probe.End()
	if ok {
		e.metrics.L1Hits.Add(1)
		return data, key, SourceL1, nil
	}
	c, leader := e.flights.join(key)
	if !leader {
		e.metrics.Coalesced.Add(1)
		wait := sp.Child("coalesce-wait")
		defer wait.End()
		select {
		case <-c.done:
			if c.err != nil {
				return nil, key, "", c.err
			}
			return c.data, key, SourceCoalesced, nil
		case <-ctx.Done():
			// This waiter's deadline expired; the flight keeps computing
			// for whoever is still listening, and the result still lands
			// in the caches.
			e.flights.drop(c)
			return nil, key, "", ctx.Err()
		}
	}
	// Leader: launch the work detached from this request's context, then
	// wait like any other participant. WithoutCancel keeps context values
	// (pprof labels, spans) but drops the request's cancellation and
	// deadline; the flight's refcount supplies cancellation instead.
	cctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	e.flights.setCancel(c, cancel)
	go func() {
		defer cancel()
		c.data, c.src, c.err = e.lookupOrCompute(cctx, sp, key, name, spec, salt, remote, compute)
		e.flights.finish(key, c)
	}()
	select {
	case <-c.done:
		return c.data, key, c.src, c.err
	case <-ctx.Done():
		e.flights.drop(c)
		return nil, key, "", ctx.Err()
	}
}

// lookupOrCompute is the flight's work: disk tier, then (off-owner) the
// remote forward, then admission-gated local compute, storing fresh results
// into both tiers. Stage spans hang off sp (nil when the request is
// untraced) and the compute runs under pprof labels so CPU profiles
// attribute samples to the endpoint.
func (e *Engine) lookupOrCompute(ctx context.Context, sp *obs.Span, key, name, spec, salt string, remote RemoteFunc,
	compute func(context.Context) (json.RawMessage, error)) (json.RawMessage, Source, error) {
	if e.l2 != nil {
		l2sp := sp.Child("l2-probe")
		data, hit, err := e.l2.Get(key)
		l2sp.End()
		if err != nil && e.logf != nil {
			e.logf("serve: l2 read key=%.12s…: %v (recomputing)", key, err)
		}
		if err == nil && hit {
			e.metrics.L2Hits.Add(1)
			e.l1.Put(key, data)
			return data, SourceL2, nil
		}
	}
	if remote != nil {
		fwdSp := sp.Child("peer-forward")
		data, err := remote(ctx)
		fwdSp.End()
		if err == nil && data != nil {
			e.metrics.PeerHits.Add(1)
			e.fill(key, name, spec, salt, data)
			return data, SourcePeer, nil
		}
		if err != nil {
			if errors.Is(err, errSaturated) {
				// The owner shed the request: propagate the shed instead of
				// absorbing the fleet's overload locally.
				e.metrics.Rejected.Add(1)
				return nil, "", err
			}
			if e.logf != nil && ctx.Err() == nil {
				e.logf("serve: peer forward key=%.12s…: %v (computing locally)", key, err)
			}
		}
		if ctx.Err() != nil {
			return nil, "", ctx.Err()
		}
	}
	admSp := sp.Child("admission")
	err := e.adm.acquire(ctx)
	admSp.End()
	if err != nil {
		if err == errSaturated {
			e.metrics.Rejected.Add(1)
		}
		return nil, "", err
	}
	defer e.adm.release()
	if e.computeStarted != nil {
		e.computeStarted(key)
	}
	compSp := sp.Child("compute")
	var data json.RawMessage
	obs.Do(obs.ContextWithSpan(ctx, compSp), "query", name, func(ctx context.Context) {
		data, err = safeCompute(ctx, compute)
	})
	compSp.End()
	if err != nil {
		return nil, "", err
	}
	// A deadline that fired mid-compute means the result may be partial
	// (the GK solver returns early on cancellation): report the timeout and
	// never cache.
	if ctx.Err() != nil {
		return nil, "", ctx.Err()
	}
	e.metrics.Computed.Add(1)
	storeSp := sp.Child("store")
	defer storeSp.End()
	e.l1.Put(key, data)
	if e.l2 != nil {
		if err := e.l2.Put(key, harness.Entry{
			Job: name, Spec: spec, Salt: salt,
			CreatedAt: time.Now().UTC(), Result: data,
		}); err != nil && e.logf != nil {
			e.logf("serve: l2 write key=%.12s…: %v (serving uncached)", key, err)
		}
		if e.l2MaxBytes > 0 && e.l2Puts.Add(1)%l2PruneEvery == 0 {
			if _, _, err := e.l2.Prune(e.l2MaxBytes, e.logf); err != nil && e.logf != nil {
				e.logf("serve: l2 prune: %v", err)
			}
		}
	}
	if hook := e.onFresh.Load(); hook != nil {
		(*hook)(key, name, spec, salt, data)
	}
	return data, SourceComputed, nil
}

// Cached returns the locally cached bytes for key — L1 then L2, promoting a
// disk hit into memory — without ever computing or forwarding. It backs the
// cluster tier's cache-only entry reads, which must be loop-safe by
// construction.
func (e *Engine) Cached(key string) (json.RawMessage, bool) {
	if data, ok := e.l1.Get(key); ok {
		return data, true
	}
	if e.l2 != nil {
		if data, hit, err := e.l2.Get(key); err == nil && hit {
			e.l1.Put(key, data)
			return data, true
		}
	}
	return nil, false
}

// Has reports whether key is present in the node's durable tier (L2 when
// configured, else L1) — the answer to an anti-entropy "have you got"
// probe. It deliberately ignores an L1-only copy when a disk tier exists:
// the durable tier is what replica placement counts.
func (e *Engine) Has(key string) bool {
	if e.l2 != nil {
		_, hit, err := e.l2.Get(key)
		return err == nil && hit
	}
	_, ok := e.l1.Get(key)
	return ok
}

// Fill stores a replica-push result into the local tiers unless the key is
// already durably present, and reports whether it was (the push was a
// no-op). Content addressing makes double fills harmless, so the check is
// an optimization and a test observable, not a correctness requirement.
func (e *Engine) Fill(key, name, spec, salt string, data json.RawMessage) (had bool) {
	if e.Has(key) {
		return true
	}
	e.fill(key, name, spec, salt, data)
	return false
}

// fill stores a peer-served result into both local tiers. Results are
// content-addressed and immutable, so a fill is always safe: the bytes for a
// key are the same wherever they were computed.
func (e *Engine) fill(key, name, spec, salt string, data json.RawMessage) {
	e.metrics.PeerFills.Add(1)
	e.l1.Put(key, data)
	if e.l2 == nil {
		return
	}
	if err := e.l2.Put(key, harness.Entry{
		Job: name, Spec: spec, Salt: salt,
		CreatedAt: time.Now().UTC(), Result: data,
	}); err != nil && e.logf != nil {
		e.logf("serve: l2 fill key=%.12s…: %v", key, err)
	}
	if e.l2MaxBytes > 0 && e.l2Puts.Add(1)%l2PruneEvery == 0 {
		if _, _, err := e.l2.Prune(e.l2MaxBytes, e.logf); err != nil && e.logf != nil {
			e.logf("serve: l2 prune: %v", err)
		}
	}
}

// safeCompute invokes compute with panic recovery, so one malformed query
// cannot take down the daemon (mirrors harness.safeRun).
func safeCompute(ctx context.Context, compute func(context.Context) (json.RawMessage, error)) (data json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: compute panic: %v\n%s", r, debug.Stack())
		}
	}()
	return compute(ctx)
}

package sim

import (
	"encoding/json"
	"math"
	"testing"
)

func TestRNGDeterministicAndSeedSensitive(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
	c := NewRNG(8)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRNG(7).State == c.State {
			same++
		}
		c.Uint64()
	}
	if x, y := NewRNG(7).Uint64(), NewRNG(8).Uint64(); x == y {
		t.Fatalf("adjacent seeds produced identical first draw %d", x)
	}
}

func TestRNGStateRoundTrip(t *testing.T) {
	r := NewRNG(42)
	for i := 0; i < 17; i++ {
		r.Uint64()
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var restored RNG
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if r.Uint64() != restored.Uint64() {
			t.Fatalf("restored stream diverged at draw %d after round-trip", i)
		}
	}
}

func TestRNGRangesAndMoments(t *testing.T) {
	r := NewRNG(3)
	const n = 200_000
	var sumF, sumE float64
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sumF += f
		e := r.ExpFloat64()
		if e < 0 {
			t.Fatalf("ExpFloat64 negative: %v", e)
		}
		sumE += e
		counts[r.Intn(10)]++
	}
	if m := sumF / n; math.Abs(m-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", m)
	}
	if m := sumE / n; math.Abs(m-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean %v, want ~1", m)
	}
	for d, c := range counts {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("Intn(10) digit %d count %d far from uniform %d", d, c, n/10)
		}
	}
}

func TestRNGShuffleIsPermutation(t *testing.T) {
	r := NewRNG(5)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, x := range xs {
		if seen[x] {
			t.Fatalf("duplicate element %d after shuffle", x)
		}
		seen[x] = true
	}
}

func TestScheduleExactPreservesTieOrder(t *testing.T) {
	// Two same-time events recorded from one engine, re-armed in the
	// opposite insertion order on a fresh engine with their original seqs:
	// execution order must follow the recorded seqs, not insertion order.
	e1 := NewEngine()
	var order []string
	sa := e1.Schedule(10, func() {})
	sb := e1.Schedule(10, func() {})

	e2 := NewEngine()
	e2.SetClock(0, e1.SeqClock())
	e2.ScheduleExact(10, sb, func() { order = append(order, "b") })
	e2.ScheduleExact(10, sa, func() { order = append(order, "a") })
	e2.RunAll()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("tie order after restore = %v, want [a b]", order)
	}
	if e2.SeqClock() != e1.SeqClock() {
		t.Fatalf("seq clock %d, want %d", e2.SeqClock(), e1.SeqClock())
	}
	// Fresh events on the restored engine keep monotonic seqs.
	if s := e2.Schedule(20, func() {}); s <= sb {
		t.Fatalf("fresh seq %d not past restored counter %d", s, sb)
	}
}

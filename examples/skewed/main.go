// Skewed-traffic study (§6.6–§6.7): sweep the skew parameter φ of
// Skew(θ,φ) and watch where the cheap Xpander with HYB routing matches the
// full-bandwidth fat-tree — including the dynamic-network models' view of
// the same workloads in the fluid model.
package main

import (
	"fmt"
	"math/rand"

	"beyondft/internal/fluid"
	"beyondft/internal/netsim"
	"beyondft/internal/sim"
	"beyondft/internal/topology"
	"beyondft/internal/workload"
)

func main() {
	ft := topology.NewFatTree(8)
	xp := topology.NewXpander(5, 9, 3, rand.New(rand.NewSource(1)))

	fmt.Println("Packet-level: Skew(theta=0.04, phi) at 8 flows/s/server, pFabric sizes")
	fmt.Printf("%-8s %-22s %-22s\n", "phi", "fat-tree avg FCT (ms)", "xpander-HYB avg FCT (ms)")
	for _, phi := range []float64{0.25, 0.5, 0.77, 0.9} {
		res := func(t *topology.Topology, routing netsim.RoutingScheme) workload.Result {
			rng := rand.New(rand.NewSource(3))
			pairs := workload.NewSkew(t, 0.04, phi, rng)
			cfg := netsim.DefaultConfig()
			cfg.Routing = routing
			net := netsim.NewNetwork(t, cfg)
			exp := workload.DefaultExperiment(pairs, workload.PFabricWebSearch(),
				8*float64(t.TotalServers()),
				50*sim.Millisecond, 250*sim.Millisecond, 1500*sim.Millisecond, 3)
			return exp.Run(net)
		}
		a := res(&ft.Topology, netsim.ECMP)
		b := res(&xp.Topology, netsim.HYB)
		fmt.Printf("%-8.2f %-22.2f %-22.2f\n", phi, a.AvgFCTMs, b.AvgFCTMs)
	}

	// The dynamic-topology models' view of the same cost point (δ=1.5):
	// Xpander ToRs have 5 network ports and 3 servers, so an equal-cost
	// dynamic design gets 5/1.5 flexible ports.
	rDyn := 5.0 / 1.5
	fmt.Printf("\nFluid-model dynamic baselines at the Xpander's cost point (delta=1.5):\n")
	fmt.Printf("  unrestricted dynamic: throughput/server = %.2f\n",
		fluid.UnrestrictedDynamic(rDyn, 3))
	fmt.Printf("  restricted dynamic (all %d ToRs active): <= %.2f (Moore bound)\n",
		xp.NumSwitches(), fluid.RestrictedDynamic(xp.NumSwitches(), int(rDyn), 3))
	fmt.Println("\nThe static Xpander needs no reconfiguration, buffering, or traffic")
	fmt.Println("estimation to serve the hotspots dynamic designs are built for.")
}

package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBucketsMs are the fixed upper bounds (milliseconds, cumulative) of
// the per-endpoint latency histograms. Fixed buckets keep observation
// lock-free — one atomic increment — and make /metrics output directly
// comparable across runs and instances.
var latencyBucketsMs = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// Histogram is a fixed-bucket cumulative latency histogram. All fields are
// atomics; Observe never blocks.
type Histogram struct {
	buckets [len(latencyBucketsMs) + 1]atomic.Int64 // last bucket = +Inf
	count   atomic.Int64
	sumUs   atomic.Int64 // total microseconds, for the _sum series
}

// Observe records one request duration.
func (h *Histogram) Observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMs) && ms > latencyBucketsMs[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumUs.Add(int64(d / time.Microsecond))
}

// Metrics is the daemon's observability surface: atomic request/cache/
// rejection counters plus one latency histogram per endpoint. The hot path
// touches only atomics; the endpoint map is append-only under a mutex and
// handlers cache their histogram pointer at route-registration time.
type Metrics struct {
	Requests  atomic.Int64 // requests entering a /v1 handler
	Coalesced atomic.Int64 // requests served by joining an identical in-flight compute
	L1Hits    atomic.Int64 // in-memory LRU hits
	L2Hits    atomic.Int64 // on-disk cache hits
	Computed  atomic.Int64 // results computed fresh
	Rejected  atomic.Int64 // 429s from admission control
	Errors    atomic.Int64 // 4xx/5xx responses other than 429

	mu        sync.Mutex
	latencies map[string]*Histogram
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{latencies: map[string]*Histogram{}}
}

// Latency returns (creating on first use) the histogram for an endpoint.
func (m *Metrics) Latency(endpoint string) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.latencies[endpoint]
	if !ok {
		h = &Histogram{}
		m.latencies[endpoint] = h
	}
	return h
}

// WriteTo renders the metrics in the Prometheus text exposition format
// (counters and cumulative histograms), endpoints in sorted order.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	var n int64
	p := func(format string, args ...any) error {
		c, err := fmt.Fprintf(w, format, args...)
		n += int64(c)
		return err
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"beyondftd_requests_total", m.Requests.Load()},
		{"beyondftd_coalesced_total", m.Coalesced.Load()},
		{`beyondftd_cache_hits_total{tier="l1"}`, m.L1Hits.Load()},
		{`beyondftd_cache_hits_total{tier="l2"}`, m.L2Hits.Load()},
		{"beyondftd_computed_total", m.Computed.Load()},
		{"beyondftd_rejected_total", m.Rejected.Load()},
		{"beyondftd_errors_total", m.Errors.Load()},
	} {
		if err := p("%s %d\n", c.name, c.v); err != nil {
			return n, err
		}
	}

	m.mu.Lock()
	endpoints := make([]string, 0, len(m.latencies))
	for ep := range m.latencies {
		endpoints = append(endpoints, ep)
	}
	m.mu.Unlock()
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		h := m.Latency(ep)
		cum := int64(0)
		for i := range h.buckets {
			cum += h.buckets[i].Load()
			le := "+Inf"
			if i < len(latencyBucketsMs) {
				le = fmt.Sprintf("%g", latencyBucketsMs[i])
			}
			if err := p("beyondftd_request_duration_ms_bucket{endpoint=%q,le=%q} %d\n", ep, le, cum); err != nil {
				return n, err
			}
		}
		if err := p("beyondftd_request_duration_ms_count{endpoint=%q} %d\n", ep, h.count.Load()); err != nil {
			return n, err
		}
		if err := p("beyondftd_request_duration_ms_sum{endpoint=%q} %.3f\n", ep,
			float64(h.sumUs.Load())/1e3); err != nil {
			return n, err
		}
	}
	return n, nil
}

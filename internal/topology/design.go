package topology

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"beyondft/internal/graph"
)

// Design is a concrete, serializable topology instance: the switch graph as
// an explicit edge list plus the server attachment vector. It is how
// search-found (or otherwise hand-crafted) networks become first-class named
// topologies: a Design registered under a name can be evaluated by every
// surface that accepts a topology kind — cmd/throughput, the daemon's
// /v1/throughput, the experiment drivers — without re-running the process
// that produced it.
//
// The JSON encoding is canonical given a canonical edge list (ascending
// (U,V), U < V, as produced by graph.Graph.Edges), which makes Hash a stable
// content address for cache keys.
type Design struct {
	// Name identifies the design in the registry. Excluded from Hash so a
	// renamed design keeps its content address.
	Name string `json:"name"`
	// SwitchPorts is the homogeneous per-switch port count (0 if unknown
	// or heterogeneous), as in Topology.
	SwitchPorts int `json:"switch_ports,omitempty"`
	// Servers[i] is the number of servers attached to switch i; its length
	// is the switch count.
	Servers []int `json:"servers"`
	// Edges is the switch-level edge list, canonical order (U < V,
	// ascending U then V).
	Edges []DesignEdge `json:"edges"`
}

// DesignEdge is one undirected edge of a Design (U < V), with multiplicity.
type DesignEdge struct {
	U    int `json:"u"`
	V    int `json:"v"`
	Mult int `json:"mult,omitempty"` // 0 means 1
}

// DesignOf captures a topology as a Design with a canonical edge list.
func DesignOf(t *Topology) *Design {
	d := &Design{
		Name:        t.Name,
		SwitchPorts: t.SwitchPorts,
		Servers:     append([]int(nil), t.Servers...),
	}
	for _, e := range t.G.Edges() {
		d.Edges = append(d.Edges, DesignEdge{U: e.U, V: e.V, Mult: e.Mult})
	}
	return d
}

// canonicalize sorts the edge list into canonical order and normalizes
// multiplicity 1 to the omitted zero value, so hashes do not depend on how
// the design was assembled.
func (d *Design) canonicalize() {
	for i := range d.Edges {
		if d.Edges[i].U > d.Edges[i].V {
			d.Edges[i].U, d.Edges[i].V = d.Edges[i].V, d.Edges[i].U
		}
		if d.Edges[i].Mult == 1 {
			d.Edges[i].Mult = 0
		}
	}
	sort.Slice(d.Edges, func(i, j int) bool {
		if d.Edges[i].U != d.Edges[j].U {
			return d.Edges[i].U < d.Edges[j].U
		}
		return d.Edges[i].V < d.Edges[j].V
	})
}

// Hash returns the design's content address: a hex SHA-256 over the
// canonical encoding of everything except Name. Two designs with equal
// hashes build identical topologies (up to the display name).
func (d *Design) Hash() string {
	c := *d
	c.Name = ""
	c.Edges = append([]DesignEdge(nil), d.Edges...)
	c.canonicalize()
	data, err := json.Marshal(&c)
	if err != nil {
		panic(fmt.Sprintf("topology: encode design: %v", err)) // flat struct of ints
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Validate checks the design is buildable: a non-empty name, a consistent
// server vector, in-range simple edges, and (via Build) a connected graph.
func (d *Design) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("topology: design with empty name")
	}
	if len(d.Servers) < 2 {
		return fmt.Errorf("topology: design %s: need >= 2 switches, got %d", d.Name, len(d.Servers))
	}
	n := len(d.Servers)
	for i, s := range d.Servers {
		if s < 0 {
			return fmt.Errorf("topology: design %s: negative server count at switch %d", d.Name, i)
		}
	}
	for _, e := range d.Edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return fmt.Errorf("topology: design %s: edge (%d,%d) out of range [0,%d)", d.Name, e.U, e.V, n)
		}
		if e.U == e.V {
			return fmt.Errorf("topology: design %s: self-loop at switch %d", d.Name, e.U)
		}
		if e.Mult < 0 {
			return fmt.Errorf("topology: design %s: negative multiplicity on edge (%d,%d)", d.Name, e.U, e.V)
		}
	}
	return nil
}

// Build constructs the topology the design describes and validates it
// (including port budgets when SwitchPorts > 0 and connectivity).
func (d *Design) Build() (*Topology, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	g := graph.New(len(d.Servers))
	for _, e := range d.Edges {
		mult := e.Mult
		if mult == 0 {
			mult = 1
		}
		g.AddEdgeMulti(e.U, e.V, mult)
	}
	t := &Topology{
		Name:        d.Name,
		G:           g,
		Servers:     append([]int(nil), d.Servers...),
		SwitchPorts: d.SwitchPorts,
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// designRegistry is the process-wide named-design table. Registration is
// content-checked: re-registering the same bytes under the same name is a
// no-op, while a name collision with different content is an error — two
// different networks must never alias one name (the serving cache keys by
// design hash, but humans key by name).
var designRegistry = struct {
	sync.RWMutex
	byName map[string]*Design
}{byName: map[string]*Design{}}

// RegisterDesign adds a design to the process-wide registry under d.Name.
func RegisterDesign(d *Design) error {
	if err := d.Validate(); err != nil {
		return err
	}
	designRegistry.Lock()
	defer designRegistry.Unlock()
	if prev, ok := designRegistry.byName[d.Name]; ok {
		if prev.Hash() != d.Hash() {
			return fmt.Errorf("topology: design %q already registered with different content", d.Name)
		}
		return nil
	}
	c := *d
	c.Edges = append([]DesignEdge(nil), d.Edges...)
	c.Servers = append([]int(nil), d.Servers...)
	c.canonicalize()
	designRegistry.byName[d.Name] = &c
	return nil
}

// UnregisterDesign removes a named design (used by tests and reloads).
func UnregisterDesign(name string) {
	designRegistry.Lock()
	defer designRegistry.Unlock()
	delete(designRegistry.byName, name)
}

// LookupDesign returns the registered design with the given name.
func LookupDesign(name string) (*Design, bool) {
	designRegistry.RLock()
	defer designRegistry.RUnlock()
	d, ok := designRegistry.byName[name]
	return d, ok
}

// DesignNames returns the sorted names of every registered design.
func DesignNames() []string {
	designRegistry.RLock()
	defer designRegistry.RUnlock()
	names := make([]string, 0, len(designRegistry.byName))
	for name := range designRegistry.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WriteFile writes the design as JSON to path (atomically enough for one
// writer: temp file + rename).
func (d *Design) WriteFile(path string) error {
	c := *d
	c.Edges = append([]DesignEdge(nil), d.Edges...)
	c.canonicalize()
	data, err := json.MarshalIndent(&c, "", "  ")
	if err != nil {
		return fmt.Errorf("topology: encode design %s: %w", d.Name, err)
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadDesignFile parses one design JSON file and validates it.
func ReadDesignFile(path string) (*Design, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Design
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("topology: parse design %s: %w", path, err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// LoadDesignDir reads every *.json design file under dir and registers it,
// returning the sorted names loaded. A missing directory is not an error
// (zero designs): daemons pass the flag unconditionally.
func LoadDesignDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		d, err := ReadDesignFile(filepath.Join(dir, de.Name()))
		if err != nil {
			return names, err
		}
		if err := RegisterDesign(d); err != nil {
			return names, err
		}
		names = append(names, d.Name)
	}
	sort.Strings(names)
	return names, nil
}

package graph

import (
	"os"
	"strconv"
)

// WorkersEnv is the environment variable read by EnvParallelism — the one
// worker-count knob shared by the CLIs (cmd/throughput -workers,
// cmd/pktsim -workers) and the serving daemon (beyondftd -workers).
const WorkersEnv = "BEYONDFT_WORKERS"

// EnvParallelism returns the default for -workers flags: $BEYONDFT_WORKERS
// if it parses as a positive integer, else 0, which SetParallelism treats
// as GOMAXPROCS.
func EnvParallelism() int {
	if v := os.Getenv(WorkersEnv); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 0
}

package fluid

import (
	"math/rand"
	"testing"

	"beyondft/internal/tm"
	"beyondft/internal/topology"
)

// BenchmarkMaxConcurrentFlow is the tracked GK-solver benchmark (see
// BENCH_pr2.json): a Jellyfish at laptop scale under a longest-matching TM,
// the paper's workhorse evaluation. It exercises the incremental D(l)
// bookkeeping, the parallel per-source dual-bound distances, and the
// early-terminating Dijkstra on the routing path.
// benchGKOptions lives at package scope so the compiler cannot prove
// Observer is nil and fold the guard away: the benchmark below measures
// the real hot-path sequence — interface nil check per phase, integer
// increment per routing iteration.
var benchGKOptions GKOptions

// BenchmarkGKObserverDisabled guards the observability layer's
// zero-overhead contract (tracked in BENCH_pr5.json): with a nil
// GKObserver, the hook the GK hot loop executes must cost 0 allocs/op.
// The solve-level wall-time check rides on BenchmarkMaxConcurrentFlow and
// BenchmarkGKMaxConcurrentFlow staying within noise of their BENCH_pr3
// values — the same code path now includes these guards.
func BenchmarkGKObserverDisabled(b *testing.B) {
	iters := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if benchGKOptions.Observer != nil {
			benchGKOptions.Observer.GKPhase(i, iters, 0.5, 1.0)
		}
		iters++
		if benchGKOptions.Observer != nil {
			benchGKOptions.Observer.GKDone(i, iters, 0.5, 1.0)
		}
	}
	if iters != b.N {
		b.Fatal("loop elided")
	}
}

func BenchmarkMaxConcurrentFlow(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	jf := topology.NewJellyfish(64, 8, 6, rng)
	var racks []int
	for r := 0; r < jf.G.N(); r += 2 {
		racks = append(racks, r)
	}
	m := tm.LongestMatching(jf.G, racks, tm.Uniform(6))
	nw := NewNetwork(jf.G, 1.0)
	comms := Commodities(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := MaxConcurrentFlow(nw, comms, GKOptions{Epsilon: 0.1})
		if res.Throughput <= 0 {
			b.Fatal("zero throughput")
		}
	}
}

package experiments

import (
	"fmt"
	"math"

	"beyondft/internal/cost"
	"beyondft/internal/fluid"
	"beyondft/internal/graph"
	"beyondft/internal/tm"
	"beyondft/internal/topology"
	"beyondft/internal/workload"
)

// fluidXPoints is the active-server-fraction sweep of Figs. 5 and 6.
func fluidXPoints() []float64 {
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
}

// throughputAt computes GK throughput for a longest-matching TM over an x
// fraction of t's racks.
func (c Config) throughputAt(t *topology.Topology, x float64, salt int64) float64 {
	rng := c.rng(salt)
	racks := workload.ActiveRacks(t, x, false, rng)
	m := tm.LongestMatching(t.G, racks, func(r int) int { return t.Servers[r] })
	return fluid.Throughput(t.G, m, fluid.GKOptions{Epsilon: c.Epsilon})
}

// Table1CostModel reproduces Table 1: per-port costs of static and dynamic
// network technologies, and the derived flexibility premium δ.
func Table1CostModel() *Figure {
	f := &Figure{
		ID:     "table1",
		Title:  "Cost per network port (static vs FireFly vs ProjecToR)",
		XLabel: "row",
		YLabel: "dollars per port (and δ relative to static)",
	}
	var xs []float64
	var dollars, deltas []float64
	for i, pc := range cost.Table1() {
		xs = append(xs, float64(i))
		dollars = append(dollars, pc.Dollars)
		deltas = append(deltas, cost.Delta(pc.Technology))
		f.Notes = append(f.Notes, fmt.Sprintf("row %d = %s", i, pc.Technology))
	}
	f.Series = append(f.Series,
		Series{Label: "$/port", X: xs, Y: dollars},
		Series{Label: "delta", X: xs, Y: deltas})
	f.Notes = append(f.Notes, "paper: static $215, firefly $370, projector $320-420; delta >= 1.5")
	return f
}

// Figure2TP renders the throughput-proportionality illustration: the TP
// curve min(α/x,1) against the fat-tree's step behaviour.
func Figure2TP() *Figure {
	const alpha = 1.0 / 3.0
	const k = 32
	f := &Figure{
		ID:     "fig2",
		Title:  "Throughput proportionality vs fat-tree (alpha=1/3, k=32)",
		XLabel: "active fraction x",
		YLabel: "throughput per server",
	}
	var xs, tp, ft []float64
	for x := 0.02; x <= 1.0001; x += 0.02 {
		xs = append(xs, x)
		tp = append(tp, fluid.ThroughputProportional(alpha, x))
		ft = append(ft, fluid.FatTreeCurve(alpha, k, x))
	}
	f.Series = append(f.Series,
		Series{Label: "throughput-prop", X: xs, Y: tp},
		Series{Label: "fat-tree", X: xs, Y: ft})
	return f
}

// Figure3Xpander reports the structure of the paper's Fig. 3 Xpander: 486
// 24-port switches, 3402 servers, 18 meta-nodes (6 pods of 3), and the
// cable-bundling numbers that make it cabling-friendly.
func (c Config) Figure3Xpander() *Figure {
	x := topology.NewXpander(17, 27, 7, c.rng(3))
	meta := x.D + 1
	bundles := meta * (meta - 1) / 2
	f := &Figure{
		ID:     "fig3",
		Title:  "Xpander structure (486 switches, 3402 servers)",
		XLabel: "quantity",
		YLabel: "count",
	}
	sgRng := c.rng(4)
	lambda2 := x.G.SecondEigenvalue(150, sgRng)
	f.Series = append(f.Series, Series{
		Label: "value",
		X:     []float64{0, 1, 2, 3, 4, 5, 6},
		Y: []float64{
			float64(x.NumSwitches()),
			float64(x.TotalServers()),
			float64(meta),
			float64(x.Lift),
			float64(bundles),
			float64(x.Lift), // cables per meta-node bundle
			lambda2,
		},
	})
	f.Notes = append(f.Notes,
		"rows: switches, servers, meta-nodes, switches/meta-node, cable bundles, cables/bundle, lambda2",
		fmt.Sprintf("near-Ramanujan check: lambda2=%.2f vs 2*sqrt(d-1)=%.2f", lambda2, 2*math.Sqrt(float64(x.D-1))))
	return f
}

// Figure4Toy reproduces the §4.1 toy example: 54 switches with 12 ports
// (6 servers each), 9 active racks. The restricted dynamic model is capped
// at 80% by the Moore bound while equal-cost static networks (δ=1.5) reach
// full throughput.
func (c Config) Figure4Toy() *Figure {
	f := &Figure{
		ID:     "fig4",
		Title:  "Toy example: static vs un/restricted dynamic (9 active racks)",
		XLabel: "row",
		YLabel: "throughput per server",
	}
	restricted := fluid.RestrictedDynamic(9, 6, 6)
	unrestricted := fluid.UnrestrictedDynamic(6, 6)

	// Static (a): 54 switches, 9 network ports, 6 servers (δ=1.5 cost parity).
	jfA := topology.NewJellyfish(54, 9, 6, c.rng(5))
	// Static (b): 81 switches, 12 ports, same 324 servers -> 4 servers, 8 net.
	jfB := topology.NewJellyfish(81, 8, 4, c.rng(45))
	toy := func(t *topology.Topology, salt int64) float64 {
		racks := workload.ActiveRacks(t, 9/float64(t.NumSwitches()), false, c.rng(salt))
		m := tm.AllToAll(racks[:9], func(r int) int { return t.Servers[r] })
		return fluid.Throughput(t.G, m, fluid.GKOptions{Epsilon: c.Epsilon})
	}
	f.Series = append(f.Series, Series{
		Label: "throughput",
		X:     []float64{0, 1, 2, 3},
		Y:     []float64{restricted, unrestricted, toy(jfA, 46), toy(jfB, 47)},
	})
	f.Notes = append(f.Notes,
		"rows: restricted-dyn bound, unrestricted-dyn, jellyfish(54x9net), jellyfish(81x8net)",
		"paper: restricted capped at 0.80; static networks achieve ~full throughput")
	return f
}

// slimflyConfig returns the Fig. 5(a) static network: SlimFly q=17 at paper
// scale (578 ToRs, 25 network / 24 server ports), q=5 scaled (50 ToRs, 7/6).
func (c Config) slimflyConfig() (*topology.SlimFly, int, int) {
	if c.Full {
		return topology.NewSlimFly(17, 24), 25, 24
	}
	return topology.NewSlimFly(5, 6), 7, 6
}

// longhopConfig returns the Fig. 5(b) network: Longhop 512 ToRs with 10
// network / 8 server ports at paper scale; 64 ToRs with 8/6 scaled.
func (c Config) longhopConfig() (*topology.Longhop, int, int) {
	if c.Full {
		return topology.NewLonghop(9, 10, 8), 10, 8
	}
	return topology.NewLonghop(6, 8, 6), 8, 6
}

// figure5 builds one of the Fig. 5 panels.
func (c Config) figure5(id string, static *topology.Topology, r, s int) *Figure {
	const delta = 1.5
	f := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("Throughput vs active fraction: %s and same-equipment Jellyfish", static.Name),
		XLabel: "active fraction x",
		YLabel: "throughput per server",
	}
	jf := topology.NewJellyfishSameEquipment(static, c.rng(6))

	xs := fluidXPoints()
	var ySF, yJF, yTP, yUn, yRe, yFT []float64
	for i, x := range xs {
		ySF = append(ySF, c.throughputAt(static, x, int64(100+i)))
		yJF = append(yJF, c.throughputAt(jf, x, int64(100+i)))
	}
	alpha := yJF[len(yJF)-1]
	rDyn := float64(r) / delta
	alphaFT := (float64(r) / float64(s)) / 4.0 // full fat-tree uses 4 net ports/server
	for _, x := range xs {
		yTP = append(yTP, fluid.ThroughputProportional(alpha, x))
		yUn = append(yUn, fluid.UnrestrictedDynamic(rDyn, float64(s)))
		active := int(x*float64(static.NumSwitches()) + 0.5)
		yRe = append(yRe, fluid.RestrictedDynamic(active, int(rDyn), float64(s)))
		yFT = append(yFT, math.Min(1, alphaFT))
	}
	f.Series = append(f.Series,
		Series{Label: "throughput-prop", X: xs, Y: yTP},
		Series{Label: "jellyfish", X: xs, Y: yJF},
		Series{Label: "unrestricted-dyn", X: xs, Y: yUn},
		Series{Label: static.Name, X: xs, Y: ySF},
		Series{Label: "restricted-dyn", X: xs, Y: yRe},
		Series{Label: "equal-cost-fattree", X: xs, Y: yFT})
	f.Notes = append(f.Notes,
		fmt.Sprintf("delta=%.1f; dynamic gets %.2f network ports per ToR vs static's %d", delta, rDyn, r),
		"paper: static expanders match/exceed dynamic models in the skewed regime (small x)")
	return f
}

// Figure5a is the SlimFly panel of Fig. 5.
func (c Config) Figure5a() *Figure {
	sf, r, s := c.slimflyConfig()
	return c.figure5("fig5a", &sf.Topology, r, s)
}

// Figure5b is the Longhop panel of Fig. 5.
func (c Config) Figure5b() *Figure {
	lh, r, s := c.longhopConfig()
	return c.figure5("fig5b", &lh.Topology, r, s)
}

// Figure5Alt reproduces §5's alternative equal-cost comparison: instead of
// shrinking the dynamic network's ports, give the static Jellyfish δ× the
// resources — (a) δ× network ports per switch, (b) δ× switches — and verify
// it achieves full throughput in the regime of interest (the paper's toy
// example §4.1 made the same point with 54 vs 81 switches).
func (c Config) Figure5Alt() *Figure {
	const delta = 1.5
	f := &Figure{
		ID:     "fig5alt",
		Title:  "Equal-cost alternative: Jellyfish with delta-times the dynamic network's ports",
		XLabel: "active fraction x",
		YLabel: "throughput per server",
	}
	// Dynamic reference point: ToRs with 6 server ports and 6 flexible
	// ports (the §4.1 shape), 54 ToRs.
	const (
		n       = 54
		servers = 6
		dynPort = 6
	)
	xs := fluidXPoints()
	// (a) same switches, delta x ports: 9 network ports each.
	jfa := topology.NewJellyfish(n, int(delta*dynPort), servers, c.rng(51))
	// (b) delta x switches of the original port count: 81 switches hosting
	// the same 324 servers (4 each), 8 network ports.
	jfb := topology.NewJellyfishForServers(n*3/2, dynPort+servers, n*servers, c.rng(52))
	var ya, yb, yUn []float64
	for i, x := range xs {
		ya = append(ya, c.throughputAt(jfa, x, int64(500+i)))
		yb = append(yb, c.throughputAt(jfb, x, int64(500+i)))
		yUn = append(yUn, fluid.UnrestrictedDynamic(dynPort, servers))
	}
	f.Series = append(f.Series,
		Series{Label: "jf-delta-ports", X: xs, Y: ya},
		Series{Label: "jf-delta-switches", X: xs, Y: yb},
		Series{Label: "unrestricted-dyn", X: xs, Y: yUn})
	f.Notes = append(f.Notes,
		"paper §5: 'In both settings, even with delta=1.5, Jellyfish achieved full throughput in the regime of interest'")
	return f
}

// Figure6a compares Jellyfish networks built from 80/50/40% of a fat-tree's
// switch budget, hosting the fat-tree's full server population.
func (c Config) Figure6a() *Figure {
	k := 20
	if !c.Full {
		k = 8
	}
	ft := topology.NewFatTree(k)
	servers := ft.TotalServers()
	nFull := ft.NumSwitches()
	f := &Figure{
		ID:     "fig6a",
		Title:  fmt.Sprintf("Jellyfish at 80/50/40%% of a k=%d fat-tree's switches (%d servers)", k, servers),
		XLabel: "active fraction x",
		YLabel: "throughput per server",
	}
	xs := fluidXPoints()
	for _, frac := range []float64{0.8, 0.5, 0.4} {
		n := int(frac*float64(nFull) + 0.5)
		jf := topology.NewJellyfishForServers(n, k, servers, c.rng(int64(7000+int(frac*100))))
		var ys []float64
		for i, x := range xs {
			ys = append(ys, c.throughputAt(jf, x, int64(200+i)))
		}
		f.Series = append(f.Series, Series{Label: fmt.Sprintf("%.0f%%-fat", frac*100), X: xs, Y: ys})
	}
	f.Notes = append(f.Notes,
		"paper: with 50% of the switches, Jellyfish gives ~full bandwidth to any <40% subset")
	return f
}

// Figure6b shows the scaling trend: Jellyfish on the switch inventory of
// k∈{12,24,36} fat-trees (k∈{6,8,10} scaled) with twice the servers.
func (c Config) Figure6b() *Figure {
	ks := []int{12, 24, 36}
	if !c.Full {
		ks = []int{6, 8, 10}
	}
	f := &Figure{
		ID:     "fig6b",
		Title:  "Jellyfish with a fat-tree's switches and 2x its servers",
		XLabel: "active fraction x",
		YLabel: "throughput per server",
	}
	xs := fluidXPoints()
	for _, k := range ks {
		ft := topology.NewFatTree(k)
		jf := topology.NewJellyfishForServers(ft.NumSwitches(), k, 2*ft.TotalServers(),
			c.rng(int64(8000+k)))
		var ys []float64
		for i, x := range xs {
			ys = append(ys, c.throughputAt(jf, x, int64(300+i)))
		}
		f.Series = append(f.Series, Series{Label: fmt.Sprintf("k=%d", k), X: xs, Y: ys})
	}
	f.Notes = append(f.Notes, "paper: the advantage is consistent or improves with scale")
	return f
}

// MooreBoundCurve exposes the Moore-bound average-path lower bound used by
// the restricted model (handy for the examples).
func MooreBoundCurve(n, d int) float64 { return graph.MooreAvgPathLowerBound(n, d) }

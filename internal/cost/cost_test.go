package cost

import (
	"math"
	"testing"
)

func TestTable1MatchesPaper(t *testing.T) {
	want := map[string]float64{
		"static":         215,
		"firefly":        370,
		"projector-low":  320,
		"projector-high": 420,
	}
	for _, pc := range Table1() {
		if w, ok := want[pc.Technology]; !ok || math.Abs(pc.Dollars-w) > 1e-9 {
			t.Errorf("%s = $%v, want $%v", pc.Technology, pc.Dollars, w)
		}
	}
	if StaticPortDollars() != 215 {
		t.Fatalf("static port = %v, want 215", StaticPortDollars())
	}
}

func TestDeltaAtLeast1Point5(t *testing.T) {
	// "Based on component costs ... the lowest estimates imply δ = 1.5."
	for _, tech := range []string{"firefly", "projector-low", "projector-high"} {
		if d := Delta(tech); d < 1.48 {
			t.Errorf("delta(%s) = %v, want >= ~1.5", tech, d)
		}
	}
	if Delta("static") != 1 {
		t.Fatalf("delta(static) should be exactly 1")
	}
	if Delta("nonexistent") != 0 {
		t.Fatalf("unknown technology should return 0")
	}
}

func TestEqualCostConversions(t *testing.T) {
	// A dynamic network can buy 1/δ of the static ports: the paper's 0.67x.
	got := DynamicPortsForEqualCost(300, 1.5)
	if math.Abs(got-200) > 1e-9 {
		t.Fatalf("dynamic ports = %v, want 200", got)
	}
	// And the §7 rule: compare a dynamic design with x ports against a
	// static design with δx ports.
	if s := StaticPortsForEqualCost(200, 1.5); math.Abs(s-300) > 1e-9 {
		t.Fatalf("static ports = %v, want 300", s)
	}
	if DynamicPortsForEqualCost(100, 0) != 0 {
		t.Fatalf("zero delta should yield 0")
	}
}

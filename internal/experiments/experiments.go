// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver returns Figure values whose series carry
// the same rows the paper plots; cmd/figures prints them and bench_test.go
// wraps them as benchmarks.
//
// Every driver runs at a laptop-scale default configuration (same per-server
// loads and cost ratios as the paper, smaller networks and windows) and at
// the paper-scale configuration when Config.Full is set. DESIGN.md §2
// documents the scaling substitution.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"

	"beyondft/internal/netsim"
	"beyondft/internal/sim"
	"beyondft/internal/topology"
	"beyondft/internal/workload"
)

// Series is one labelled curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a reproduced table or figure: a set of series over a common
// x-axis, plus free-form notes (assumptions, substitutions).
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Fprint renders the figure as an aligned text table, one row per x value.
func (f *Figure) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	for _, n := range f.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintf(w, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, " %20s", s.Label)
	}
	fmt.Fprintln(w)
	if len(f.Series) == 0 {
		return
	}
	for i := range f.Series[0].X {
		fmt.Fprintf(w, "%-14.4g", f.Series[0].X[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(w, " %20.4g", s.Y[i])
			} else {
				fmt.Fprintf(w, " %20s", "-")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "   (y-axis: %s)\n\n", f.YLabel)
}

// WriteCSV renders the figure as CSV: a header row (x label then series
// labels) followed by one row per x value — ready for any plotting tool.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	if len(f.Series) > 0 {
		for i := range f.Series[0].X {
			row := []string{strconv.FormatFloat(f.Series[0].X[i], 'g', -1, 64)}
			for _, s := range f.Series {
				if i < len(s.Y) {
					row = append(row, strconv.FormatFloat(s.Y[i], 'g', -1, 64))
				} else {
					row = append(row, "")
				}
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Config scopes every experiment driver.
type Config struct {
	// Full switches to the paper-scale topologies, loads and windows.
	Full bool
	// Seed drives topology construction and workloads.
	Seed int64
	// Epsilon is the GK FPTAS approximation parameter for fluid figures.
	Epsilon float64

	// Packet-sim measurement window and safety cap (§6.4's [0.5s,1.5s) at
	// paper scale).
	MeasureStart sim.Time
	MeasureEnd   sim.Time
	MaxSimTime   sim.Time

	// keepWindows makes drivers honour the configured measurement window
	// verbatim instead of substituting their per-figure scaled defaults.
	// Unexported so it never enters job specs or cache keys (JSON skips
	// unexported fields); tests use it to run drivers on tiny windows.
	keepWindows bool
}

// DefaultConfig returns the laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Seed:         1,
		Epsilon:      0.09,
		MeasureStart: 20 * sim.Millisecond,
		MeasureEnd:   60 * sim.Millisecond,
		MaxSimTime:   1000 * sim.Millisecond,
	}
}

// PaperConfig returns the paper-scale configuration (§6.4 exactly).
func PaperConfig() Config {
	return Config{
		Full:         true,
		Seed:         1,
		Epsilon:      0.09,
		MeasureStart: 500 * sim.Millisecond,
		MeasureEnd:   1500 * sim.Millisecond,
		MaxSimTime:   10_000 * sim.Millisecond,
	}
}

// rng derives an independent random stream from (base seed, call-site salt).
// Determinism contract (enforced by TestJobsOrderAndParallelismInvariant):
// every random draw in a driver must come from an rng obtained here with a
// salt unique to that call site, and the returned *rand.Rand must never be
// shared across logically separate constructions — that keeps each job a
// pure function of its Config, so harness jobs produce identical figures
// whether they run serially, in parallel, or in any order.
func (c Config) rng(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Seed*1_000_003 + salt))
}

// --- Shared topology configurations -------------------------------------

// FatTreeK returns the full-bandwidth baseline fat-tree: k=16 at paper
// scale (1024 servers, 320 switches), k=8 scaled (128 servers, 80 switches).
func (c Config) FatTreeK() int {
	if c.Full {
		return 16
	}
	return 8
}

// BaselineFatTree builds the §6.4 baseline.
func (c Config) BaselineFatTree() *topology.FatTree {
	return topology.NewFatTree(c.FatTreeK())
}

// CheapXpander builds the §6.4 Xpander at ~33% lower cost than the baseline
// fat-tree: paper scale 216 switches × 16 ports, 5 servers each (1080
// servers); scaled 54 switches × 8 ports, 3 servers each (162 servers).
func (c Config) CheapXpander() *topology.Xpander {
	if c.Full {
		return topology.NewXpander(11, 18, 5, c.rng(2)) // 216 switches
	}
	return topology.NewXpander(5, 9, 3, c.rng(2)) // 54 switches
}

// runExperiment executes one packet-sim point.
func (c Config) runExperiment(t *topology.Topology, routing netsim.RoutingScheme,
	serverLinkGbps float64, pairs workload.PairDist, sizes workload.FlowSizeDist,
	lambda float64, salt int64) workload.Result {
	cfg := netsim.DefaultConfig()
	cfg.Routing = routing
	cfg.ServerLinkRateGbps = serverLinkGbps
	cfg.Seed = c.Seed + salt
	net := netsim.NewNetwork(t, cfg)
	exp := workload.DefaultExperiment(pairs, sizes, lambda,
		c.MeasureStart, c.MeasureEnd, c.MaxSimTime, c.Seed+salt)
	return exp.Run(net)
}

package topology

import (
	"math"
	"math/rand"
	"testing"
)

func TestDragonFlyStructure(t *testing.T) {
	// Balanced dragonfly a=4, h=2: 9 groups of 4 routers = 36 routers.
	d := NewDragonFly(4, 2, 2)
	if d.Groups() != 9 {
		t.Fatalf("groups = %d, want 9", d.Groups())
	}
	if d.NumSwitches() != 36 {
		t.Fatalf("switches = %d, want 36", d.NumSwitches())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Intra-group cliques.
	for grp := 0; grp < d.Groups(); grp++ {
		for r1 := 0; r1 < d.A; r1++ {
			for r2 := r1 + 1; r2 < d.A; r2++ {
				if !d.G.HasEdge(grp*d.A+r1, grp*d.A+r2) {
					t.Fatalf("group %d not a clique", grp)
				}
			}
		}
	}
	// Every group pair joined by exactly one global link.
	for u := 0; u < d.Groups(); u++ {
		for v := u + 1; v < d.Groups(); v++ {
			links := 0
			for r1 := 0; r1 < d.A; r1++ {
				for r2 := 0; r2 < d.A; r2++ {
					links += d.G.Multiplicity(u*d.A+r1, v*d.A+r2)
				}
			}
			if links != 1 {
				t.Fatalf("groups %d,%d share %d global links, want 1", u, v, links)
			}
		}
	}
	// Router degree = (a-1) intra + h global.
	for r := 0; r < d.NumSwitches(); r++ {
		if got := d.G.Degree(r); got != d.A-1+d.H {
			t.Fatalf("router %d degree %d, want %d", r, got, d.A-1+d.H)
		}
	}
	// The canonical dragonfly diameter is 3 (local, global, local).
	if diam := d.G.Diameter(); diam > 3 {
		t.Fatalf("diameter = %d, want <= 3", diam)
	}
}

func TestLPSRamanujan(t *testing.T) {
	// X^{5,13}: 6-regular on PGL(2,13) = 2184 vertices (5 is a
	// non-residue mod 13).
	l := NewLPS(5, 13, 1)
	if l.NumSwitches() != 2184 {
		t.Fatalf("vertices = %d, want |PGL(2,13)| = 2184", l.NumSwitches())
	}
	if !l.OverPGL {
		t.Fatalf("5 is a non-residue mod 13: expected PGL")
	}
	d, ok := l.G.IsRegular()
	if !ok || d != 6 {
		t.Fatalf("degree = %d (regular=%v), want p+1 = 6", d, ok)
	}
	if !l.G.Connected() {
		t.Fatalf("disconnected LPS graph")
	}
	rng := rand.New(rand.NewSource(1))
	lambda2 := l.G.SecondEigenvalue(250, rng)
	ramanujan := 2 * math.Sqrt(5)
	if lambda2 > ramanujan+0.15 {
		t.Fatalf("lambda2 = %.3f exceeds the Ramanujan bound 2*sqrt(p) = %.3f", lambda2, ramanujan)
	}
}

func TestLPSPSLCase(t *testing.T) {
	// X^{13,29}: 13 is a QR mod 29 (10² = 100 ≡ 13), so the graph is over
	// PSL(2,29) with 29·(29²−1)/2 = 12180 vertices, 14-regular.
	l := NewLPS(13, 29, 0)
	want := 29 * (29*29 - 1) / 2
	if l.NumSwitches() != want {
		t.Fatalf("vertices = %d, want |PSL(2,29)| = %d", l.NumSwitches(), want)
	}
	if l.OverPGL {
		t.Fatalf("13 is a residue mod 29: expected PSL")
	}
	if d, ok := l.G.IsRegular(); !ok || d != 14 {
		t.Fatalf("degree = %d, want 14", d)
	}
}

func TestLPSRejectsBadParams(t *testing.T) {
	for _, c := range [][2]int{{4, 13}, {5, 15}, {5, 5}, {3, 13}, {5, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LPS(%d,%d) should panic", c[0], c[1])
				}
			}()
			NewLPS(c[0], c[1], 0)
		}()
	}
}

package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"beyondft/internal/harness"
)

// CodeSalt versions the experiment drivers for the result cache: bump it
// whenever a driver's computation changes (new series, different salts,
// different defaults) so stale cached results are invalidated even though
// job names and Config specs are unchanged.
//
// v2: the GK solver tracks D(l) incrementally (PR 2), which shifts
// throughput values by floating-point drift relative to the per-phase
// rescan — enough to change cached CSV bytes.
//
// v3: simulator bugfix sweep (PR 4). netsim's ECN marking moved to DCTCP
// instant-queue semantics (first mark at occupancy K, one packet earlier
// than before) and flowsim's event loop rounds departures up instead of
// truncating — both shift every packet- and flow-level figure.
//
// v4: million-flow scale tier (PR 7). Experiments draw workload randomness
// from sim.RNG instead of math/rand (different stream at the same seed) and
// P99ShortFCTMs is now a streamed sketch estimate, shifting every
// packet-level figure.
const CodeSalt = harness.Version + "+experiments-v4"

// JobResult is the cacheable output of one experiment job: the figures the
// driver produced. It round-trips through JSON losslessly (floats use the
// shortest representation that parses back exactly), which is what makes
// cached re-runs byte-identical at the CSV level.
type JobResult struct {
	Figures []*Figure `json:"figures"`
}

// DecodeJobResult rebuilds a JobResult from its JSON encoding — the exact
// inverse of the encoding the harness caches and the serving daemon
// returns over HTTP, so clients of either can round-trip results
// losslessly.
func DecodeJobResult(data []byte) (*JobResult, error) {
	var jr JobResult
	if err := json.Unmarshal(data, &jr); err != nil {
		return nil, err
	}
	return &jr, nil
}

// decodeJobResult adapts DecodeJobResult to harness.Job.Decode.
func decodeJobResult(data []byte) (any, error) {
	return DecodeJobResult(data)
}

// writeFigureCSVs renders every figure of a result as <dir>/<figureID>.csv.
func writeFigureCSVs(result any, dir string) ([]string, error) {
	jr, ok := result.(*JobResult)
	if !ok {
		return nil, fmt.Errorf("experiments: unexpected result type %T", result)
	}
	var paths []string
	for _, f := range jr.Figures {
		var buf bytes.Buffer
		if err := f.WriteCSV(&buf); err != nil {
			return nil, fmt.Errorf("csv %s: %w", f.ID, err)
		}
		p := filepath.Join(dir, f.ID+".csv")
		if err := os.WriteFile(p, buf.Bytes(), 0o644); err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// one lifts a single-figure driver into the []*Figure shape.
func one(f func(Config) *Figure) func(Config) []*Figure {
	return func(c Config) []*Figure { return []*Figure{f(c)} }
}

// drivers is the registration table: every table/figure of the paper's
// evaluation (plus the extensions) as (job name, driver) pairs, in paper
// order. cmd/figures, cmd/runner and the harness benchmarks all consume
// this one table via Config.Registry.
var drivers = []struct {
	name string
	run  func(Config) []*Figure
}{
	{"table1", one(func(Config) *Figure { return Table1CostModel() })},
	{"fig2", one(func(Config) *Figure { return Figure2TP() })},
	{"fig3", one(Config.Figure3Xpander)},
	{"fig4", one(Config.Figure4Toy)},
	{"fig5a", one(Config.Figure5a)},
	{"fig5b", one(Config.Figure5b)},
	{"fig5alt", one(Config.Figure5Alt)},
	{"fig6a", one(Config.Figure6a)},
	{"fig6b", one(Config.Figure6b)},
	{"fig7b", Config.Figure7b},
	{"fig7c", Config.Figure7c},
	{"fig8", one(func(Config) *Figure { return Figure8FlowSizes() })},
	{"fig9", Config.Figure9},
	{"fig10", Config.Figure10},
	{"fig11", Config.Figure11},
	{"fig12", Config.Figure12},
	{"fig13", Config.Figure13},
	{"fig14", Config.Figure14},
	{"fig15", Config.Figure15},
	{"fig-rotor", Config.ExtensionRotorNet},
	{"fig-failures", one(Config.ExtensionFailureResilience)},
}

// Spec returns the canonical job spec for this configuration: its JSON
// encoding. Config is a flat value type, so the encoding is deterministic
// and captures everything a driver's output depends on (scale, seed,
// epsilon, measurement windows).
func (c Config) Spec() string {
	data, err := json.Marshal(c)
	if err != nil {
		// Config is a flat struct of scalars; this cannot fail.
		panic(fmt.Sprintf("experiments: encode config: %v", err))
	}
	return string(data)
}

// Job builds the harness job for one driver at configuration c. Drivers are
// pure functions of (Config, job name): every random draw inside derives
// from Config.Seed and a call-site-specific salt, so results are identical
// whether jobs run serially, in parallel, or in any order (see
// TestJobsOrderAndParallelismInvariant).
func (c Config) job(name string, run func(Config) []*Figure) harness.Job {
	return harness.Job{
		Name: name,
		Spec: c.Spec(),
		Run: func(ctx context.Context) (any, error) {
			return &JobResult{Figures: run(c)}, nil
		},
		Decode:    decodeJobResult,
		Artifacts: writeFigureCSVs,
	}
}

// Registry registers every table/figure driver as a harness job at
// configuration c, in paper order.
func (c Config) Registry() *harness.Registry {
	r := harness.NewRegistry()
	for _, d := range drivers {
		r.MustRegister(c.job(d.name, d.run))
	}
	return r
}

package validate

import "testing"

// TestSmokeSweep runs the reduced validation grid — the same set `make
// validate-smoke` executes — so `go test ./...` catches cross-model drift.
func TestSmokeSweep(t *testing.T) {
	checks := All(1, true)
	if len(checks) < 12 {
		t.Fatalf("only %d checks ran; the grid shrank unexpectedly", len(checks))
	}
	for _, c := range checks {
		if !c.OK() {
			t.Errorf("%s: %s (%s)", c.Name, c.Err, c.Detail)
		} else {
			t.Logf("ok %s: %s", c.Name, c.Detail)
		}
	}
}

// TestJobsRegisterAndFail checks the harness-job wrapper: jobs exist, carry
// distinct names, and a passing sweep round-trips through the JSON decode
// path the result cache uses.
func TestJobsRegisterAndFail(t *testing.T) {
	jobs := Jobs(1, false)
	if len(jobs) != 2 {
		t.Fatalf("want 2 validation jobs, got %d", len(jobs))
	}
	names := map[string]bool{}
	for _, j := range jobs {
		if names[j.Name] {
			t.Fatalf("duplicate job name %q", j.Name)
		}
		names[j.Name] = true
		if j.Spec == "" || j.Run == nil || j.Decode == nil || j.Artifacts == nil {
			t.Fatalf("job %q incompletely populated", j.Name)
		}
	}
}

package fluid

import (
	"math/rand"
	"testing"

	"beyondft/internal/tm"
	"beyondft/internal/topology"
)

// BenchmarkMaxConcurrentFlow is the tracked GK-solver benchmark (see
// BENCH_pr2.json): a Jellyfish at laptop scale under a longest-matching TM,
// the paper's workhorse evaluation. It exercises the incremental D(l)
// bookkeeping, the parallel per-source dual-bound distances, and the
// early-terminating Dijkstra on the routing path.
func BenchmarkMaxConcurrentFlow(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	jf := topology.NewJellyfish(64, 8, 6, rng)
	var racks []int
	for r := 0; r < jf.G.N(); r += 2 {
		racks = append(racks, r)
	}
	m := tm.LongestMatching(jf.G, racks, tm.Uniform(6))
	nw := NewNetwork(jf.G, 1.0)
	comms := Commodities(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := MaxConcurrentFlow(nw, comms, GKOptions{Epsilon: 0.1})
		if res.Throughput <= 0 {
			b.Fatal("zero throughput")
		}
	}
}

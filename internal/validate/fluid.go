package validate

import (
	"fmt"
	"math"
	"math/rand"

	"beyondft/internal/fluid"
	"beyondft/internal/tm"
	"beyondft/internal/topology"
)

// fluidScenario is one (topology, traffic matrix) instance solved by both
// the exact LP and the GK FPTAS.
type fluidScenario struct {
	name string
	topo *topology.Topology
	m    *tm.TM
}

// fluidScenarios builds the cross-check grid: three topology families ×
// {permutation, all-to-all}. All-to-all is restricted to a rack subset to
// keep the exact LP tractable (k racks cost k(k−1) commodities); the
// comparison is between solvers on the same instance, so the subset loses
// no coverage.
func fluidScenarios(seed int64, smoke bool) []fluidScenario {
	rng := rand.New(rand.NewSource(seed))
	a2aRacks := 6
	jfN, jfR := 20, 4
	xpD, xpLift := 4, 4 // 20 switches: rack count must stay even for permutation TMs
	if smoke {
		a2aRacks = 4
		jfN, jfR = 10, 3
		xpD, xpLift = 3, 4
	}
	topos := []*topology.Topology{
		&topology.NewFatTree(4).Topology,
		topology.NewJellyfish(jfN, jfR, 2, rng),
		&topology.NewXpander(xpD, xpLift, 2, rng).Topology,
	}
	var out []fluidScenario
	for _, t := range topos {
		racks := t.ToRs()
		serversOf := func(r int) int { return t.Servers[r] }
		perm := tm.RandomPermutation(racks, serversOf, rng)
		sub := racks
		if len(sub) > a2aRacks {
			sub = sub[:a2aRacks]
		}
		a2a := tm.AllToAll(sub, serversOf)
		out = append(out,
			fluidScenario{name: t.Name + "/perm", topo: t, m: perm},
			fluidScenario{name: t.Name + "/a2a", topo: t, m: a2a},
		)
	}
	return out
}

// FluidChecks solves every fluid scenario with the exact two-phase simplex
// and the Garg–Könemann FPTAS and asserts the bracket the FPTAS guarantees:
//
//	primal ≤ dual bound, primal ≤ OPT + LPSlack,
//	dual ≥ OPT − LPSlack, primal ≥ GKLowerFrac·OPT.
//
// It also asserts GK's documented worker-count invariance: the solve is
// bit-identical at 1 worker and at 4.
func FluidChecks(seed int64, smoke bool) []Check {
	var out []Check
	for _, sc := range fluidScenarios(seed, smoke) {
		out = append(out, checkFluidScenario(sc)...)
	}
	return out
}

func checkFluidScenario(sc fluidScenario) []Check {
	name := "fluid/" + sc.name
	nw := fluid.NewNetwork(sc.topo.G, 1.0)
	comms := fluid.Commodities(sc.m)
	exact, err := fluid.MaxConcurrentFlowExact(nw, comms)
	if err != nil {
		return []Check{{Name: name, Err: fmt.Sprintf("exact LP failed: %v", err)}}
	}
	gk := fluid.MaxConcurrentFlow(nw, comms, fluid.GKOptions{Epsilon: GKEpsilon, Workers: 4})
	out := []Check{CompareFluid(name, len(comms), exact, gk)}

	gk1 := fluid.MaxConcurrentFlow(nw, comms, fluid.GKOptions{Epsilon: GKEpsilon, Workers: 1})
	out = append(out, compareWorkerDet(name, gk1, gk))
	return out
}

// CompareFluid is the LP-vs-GK tolerance comparator: it judges one solved
// instance against the declared contracts (primal ≤ dual, primal bracketed
// by the exact optimum, dual a valid upper bound, FPTAS lower fraction).
// Exported so tests can feed it perturbed results and prove it rejects them.
func CompareFluid(name string, nComms int, exact float64, gk fluid.GKResult) Check {
	c := Check{
		Name: name,
		Detail: fmt.Sprintf("%d comms: exact=%.6f gk=[%.6f, %.6f] ratio=%.4f",
			nComms, exact, gk.Throughput, gk.UpperBound, gk.Throughput/exact),
	}
	switch {
	case !(exact > 0) || math.IsNaN(exact):
		c.Err = fmt.Sprintf("exact optimum %v is not positive", exact)
	case gk.Throughput > gk.UpperBound+1e-9:
		c.Err = fmt.Sprintf("GK primal %.9f exceeds its own dual bound %.9f", gk.Throughput, gk.UpperBound)
	case gk.Throughput > exact+LPSlack:
		c.Err = fmt.Sprintf("GK primal %.9f exceeds exact optimum %.9f (infeasible flow certified)", gk.Throughput, exact)
	case gk.UpperBound < exact-LPSlack:
		c.Err = fmt.Sprintf("GK dual bound %.9f below exact optimum %.9f (invalid bound)", gk.UpperBound, exact)
	case gk.Throughput < GKLowerFrac*exact:
		c.Err = fmt.Sprintf("GK primal %.9f under %.2f×exact=%.9f: FPTAS guarantee broken at ε=%.2f",
			gk.Throughput, GKLowerFrac, GKLowerFrac*exact, GKEpsilon)
	}
	return c
}

// compareWorkerDet judges GK's worker-count invariance contract.
func compareWorkerDet(name string, gk1, gk fluid.GKResult) Check {
	det := Check{Name: name + "/workers-det",
		Detail: fmt.Sprintf("throughput=%.9f at 1 and 4 workers", gk1.Throughput)}
	if gk1.Throughput != gk.Throughput || gk1.UpperBound != gk.UpperBound || gk1.Phases != gk.Phases {
		det.Err = fmt.Sprintf("GK result depends on worker count: w1=(%.12g,%.12g,%d) w4=(%.12g,%.12g,%d)",
			gk1.Throughput, gk1.UpperBound, gk1.Phases, gk.Throughput, gk.UpperBound, gk.Phases)
	}
	return det
}

package flowsim

import (
	"testing"

	"beyondft/internal/sim"
)

func TestLoopStats(t *testing.T) {
	n := NewNetwork(pairTopo(4), DefaultConfig())
	if s := n.Stats(); s != (LoopStats{}) {
		t.Fatalf("fresh network has non-zero stats: %+v", s)
	}

	// Three arrivals queued up front: the arrival-heap high water must see
	// all of them before the first one starts.
	n.ScheduleFlow(0, 0, 4, 1_000_000)
	n.ScheduleFlow(sim.Millisecond, 1, 5, 1_000_000)
	n.ScheduleFlow(2*sim.Millisecond, 2, 6, 1_000_000)
	n.Run(sim.Second)

	s := n.Stats()
	if s.HeapHighWater != 3 {
		t.Fatalf("heap high water %d, want 3", s.HeapHighWater)
	}
	// At least one event instant per arrival and per departure.
	if s.Events < 6 {
		t.Fatalf("events %d, want >= 6", s.Events)
	}
	// Every arrival and departure dirties the allocation.
	if s.AllocRounds < 4 {
		t.Fatalf("alloc rounds %d, want >= 4", s.AllocRounds)
	}
	if s.SimTime != n.Now() {
		t.Fatalf("sim time %d != Now() %d", s.SimTime, n.Now())
	}
	if s.WallTime <= 0 || s.SimPerWall() <= 0 {
		t.Fatalf("wall accounting missing: %+v", s)
	}
	for _, f := range n.Flows() {
		if !f.Done {
			t.Fatal("flow incomplete")
		}
	}
}

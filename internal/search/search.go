// Package search inverts the repo's evaluation pipeline: instead of
// measuring hand-picked datacenter topologies, it searches for good ones.
// A seeded, deterministic optimizer (hill-climb or simulated annealing)
// walks a design space under an equal-cost envelope (internal/cost port
// accounting) using two move families:
//
//   - generator-parameter moves — step a Jellyfish/Xpander's switch count,
//     degree, lift or servers-per-switch and rebuild a fresh instance;
//   - random-graph rewiring moves — double-edge swaps that preserve the
//     degree sequence (and simplicity), plus port-rebalance moves for
//     non-regular graphs.
//
// Candidates climb an evaluation ladder: a cheap structural proxy
// (spectral gap + mean shortest path) filters each proposal batch, the
// survivors get a coarse-ε Garg–Könemann solve of the near-worst-case
// (longest-matching) traffic matrix, and only the batch winner is re-solved
// at fine ε — warm-started from its own coarse duals, the what-if engine's
// ladder applied to design search. Candidate evaluations run in parallel on
// internal/harness workers and are content-addressed in the harness cache by
// design hash, so a killed search resumes where it left off: the trace and
// the best-found design are byte-identical at any worker count and any cache
// state. DESIGN.md §15 documents the architecture.
package search

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"beyondft/internal/cost"
	"beyondft/internal/fluid"
	"beyondft/internal/graph"
	"beyondft/internal/harness"
	"beyondft/internal/tm"
	"beyondft/internal/topology"
)

// CodeSalt versions candidate evaluations for the content-addressed cache:
// bump it whenever the GK solver, the traffic-matrix construction, or the
// evaluation semantics change numeric output.
const CodeSalt = "search-v1"

// DefaultBaseSpec pins the fixed demand model of candidate evaluations:
// the longest-matching TM over all racks at unit link capacity. Candidate
// cache entries are pure functions of (BaseSpec, design hash, ε), so
// searches with the same base spec share entries — even across different
// starting points.
const DefaultBaseSpec = "tm=longest-matching|cap=1"

// maxEmptySteps bounds consecutive steps with no valid proposal before the
// search concludes the neighborhood is exhausted.
const maxEmptySteps = 5

// proposalOverdraw is how many proposal attempts a batch may spend per
// requested candidate before giving up on filling it.
const proposalOverdraw = 8

// annealDecay is the per-step exponential temperature decay.
const annealDecay = 0.97

// Params are generator coordinates for parameter moves. Kind "" disables
// parameter moves (rewiring only), e.g. when the starting point is not a
// generator instance.
type Params struct {
	Kind    string // "jellyfish" | "xpander" | ""
	N       int    // jellyfish switch count ((Degree+1)*Lift for xpander)
	Degree  int    // network degree
	Lift    int    // xpander lift order
	Servers int    // servers per switch
}

// Envelope is the equal-cost feasibility region: candidates must host
// exactly the same servers and spend at most the same port dollars (Table 1
// static per-port cost) as the starting design.
type Envelope struct {
	Servers    int     `json:"servers"`
	MaxDollars float64 `json:"max_dollars"`
}

// Dollars prices a topology's switch ports under the paper's static
// per-port cost: network ports (both cable ends) plus server ports.
func Dollars(t *topology.Topology) float64 {
	return cost.StaticPortDollars() * float64(t.TotalPortsUsed())
}

// EnvelopeOf derives the equal-cost envelope from a starting design.
func EnvelopeOf(t *topology.Topology) Envelope {
	return Envelope{Servers: t.TotalServers(), MaxDollars: Dollars(t)}
}

// Admits reports whether a candidate stays within the envelope.
func (e Envelope) Admits(t *topology.Topology) bool {
	return t.TotalServers() == e.Servers && Dollars(t) <= e.MaxDollars+1e-6
}

// CandidateCache content-addresses candidate evaluations in a harness cache
// so searches are resumable and can share entries.
type CandidateCache struct {
	Cache *harness.Cache
	// BaseSpec pins everything an evaluation depends on besides the design
	// content and ε; empty means DefaultBaseSpec.
	BaseSpec string
}

// Options tunes a search run. The zero value of every field takes a
// sensible default; Seed 0 is a valid seed.
type Options struct {
	// Seed drives every random choice: proposal draws, parameter-move build
	// seeds, annealing acceptance. Same seed (and same other options) means
	// a byte-identical trace.
	Seed int64
	// Budget caps coarse-rung GK candidate evaluations, the baseline
	// included (fine re-solves of batch winners ride free, like what-if
	// promotions). Default 64.
	Budget int
	// Batch is the number of candidate moves proposed per step. Default 8.
	Batch int
	// ProxyTop is how many proxy-ranked candidates of a batch get a coarse
	// GK solve. Default 4.
	ProxyTop int
	// CoarseEps/FineEps are the evaluation ladder's GK rungs. Defaults
	// 0.25 / 0.08. Equal rungs disable the fine re-solve.
	CoarseEps float64
	FineEps   float64
	// Strategy is "anneal" (default) or "hillclimb".
	Strategy string
	// Temp is the initial annealing temperature (throughput units);
	// default 0.02, decaying by annealDecay per step.
	Temp float64
	// Workers bounds candidate-level parallelism (each GK solve runs
	// single-threaded, like the what-if engine). 0 means
	// graph.Parallelism(). Results are identical at any worker count.
	Workers int
	// Name is the best-found design's registered name. Default
	// "search-best".
	Name string
	// Ctx, if non-nil, cancels the search between evaluations; a canceled
	// run returns ctx.Err() and no result (already-cached candidate
	// evaluations survive for a resume).
	Ctx context.Context
	// Cache, if non-nil, makes the search resumable via content-addressed
	// candidate entries.
	Cache *CandidateCache
	// OnStep, if non-nil, observes each appended trace step (tests use it
	// to kill a search mid-run).
	OnStep func(Step)
}

func (o *Options) normalize() error {
	if o.Budget == 0 {
		o.Budget = 64
	}
	if o.Batch == 0 {
		o.Batch = 8
	}
	if o.ProxyTop == 0 {
		o.ProxyTop = 4
	}
	if o.CoarseEps == 0 {
		o.CoarseEps = 0.25
	}
	if o.FineEps == 0 {
		o.FineEps = 0.08
	}
	if o.Strategy == "" {
		o.Strategy = "anneal"
	}
	if o.Temp == 0 {
		o.Temp = 0.02
	}
	if o.Workers <= 0 {
		o.Workers = graph.Parallelism()
	}
	if o.Name == "" {
		o.Name = "search-best"
	}
	if o.Budget < 1 || o.Batch < 1 || o.ProxyTop < 1 {
		return fmt.Errorf("search: budget=%d batch=%d proxy_top=%d: need >= 1", o.Budget, o.Batch, o.ProxyTop)
	}
	if o.FineEps < 0.005 || o.FineEps > 0.5 {
		return fmt.Errorf("search: fine_eps=%g: need [0.005,0.5]", o.FineEps)
	}
	if o.CoarseEps < o.FineEps || o.CoarseEps > 0.5 {
		return fmt.Errorf("search: coarse_eps=%g: need [fine_eps,0.5]", o.CoarseEps)
	}
	switch o.Strategy {
	case "anneal", "hillclimb":
	default:
		return fmt.Errorf("search: unknown strategy %q (want anneal|hillclimb)", o.Strategy)
	}
	if o.Temp < 0 {
		return fmt.Errorf("search: temp=%g: need >= 0", o.Temp)
	}
	if o.Cache != nil && o.Cache.BaseSpec == "" {
		o.Cache.BaseSpec = DefaultBaseSpec
	}
	return nil
}

// Eval is one candidate's GK evaluation at a single ε rung — the cached,
// content-stable unit of search work.
type Eval struct {
	Throughput float64 `json:"throughput"`  // raw GK per-server fraction (not clamped)
	UpperBound float64 `json:"upper_bound"` // GK dual bound
	Phases     int     `json:"phases"`
	Epsilon    float64 `json:"epsilon"`

	// duals carries the final arc lengths of a fresh coarse solve so the
	// fine rung can warm-start; in-memory only, never cached (cache hits
	// recompute the deterministic coarse solve when a warm seed is needed).
	duals []float64
}

// Step is one trace entry. Everything in it is a pure function of
// (starting design, Options minus Cache/Workers/Ctx/OnStep), which is what
// the byte-identical-trace tests pin.
type Step struct {
	Step      int     `json:"step"`
	Move      string  `json:"move"` // winner move, or "none" for an empty batch
	Proposals int     `json:"proposals"`
	Proxy     float64 `json:"proxy"`
	Coarse    float64 `json:"coarse"`
	Fine      float64 `json:"fine"`
	Accepted  bool    `json:"accepted"`
	State     float64 `json:"state"` // accepted design's fine throughput after this step
	Best      float64 `json:"best"`  // best-found fine throughput after this step
}

// Result is a completed search.
type Result struct {
	BaselineName string  `json:"baseline_name"`
	BaselineHash string  `json:"baseline_hash"`
	Baseline     float64 `json:"baseline"` // fine-ε throughput of the start design
	// Best is the best-found design (>= baseline by construction: the
	// baseline is the initial best), named Options.Name.
	Best     *topology.Design `json:"best"`
	BestHash string           `json:"best_hash"`
	BestVal  float64          `json:"best_val"`
	BestStep int              `json:"best_step"`
	Steps    []Step           `json:"steps"`
	Envelope Envelope         `json:"envelope"`
	// Spent counts coarse-rung candidate evaluations charged to the budget
	// (cache hits included: budgets must not depend on cache state).
	Spent int `json:"spent"`
	// FineSolves counts fine-rung evaluations (deterministic).
	FineSolves int `json:"fine_solves"`
	// CacheHits counts evaluations served from the candidate cache. Run
	// accounting — varies with cache state, excluded from Trace.
	CacheHits int `json:"-"`
}

// f6 formats a throughput for the trace: fixed 6 decimals, so identical
// float64 values render identically.
func f6(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }

// Trace renders the deterministic search trace: byte-identical across runs
// with equal seeds, at any worker count and any cache state.
func (r *Result) Trace() string {
	var b strings.Builder
	fmt.Fprintf(&b, "baseline: throughput %s (design %.12s)\n", f6(r.Baseline), r.BaselineHash)
	for _, s := range r.Steps {
		if s.Move == "none" {
			fmt.Fprintf(&b, "step %3d: no valid moves (state=%s best=%s)\n", s.Step, f6(s.State), f6(s.Best))
			continue
		}
		fmt.Fprintf(&b, "step %3d: move=%-24s cands=%d proxy=%s coarse=%s fine=%s accept=%t state=%s best=%s\n",
			s.Step, s.Move, s.Proposals, f6(s.Proxy), f6(s.Coarse), f6(s.Fine), s.Accepted, f6(s.State), f6(s.Best))
	}
	fmt.Fprintf(&b, "best: throughput %s at step %d (design %.12s)\n", f6(r.BestVal), r.BestStep, r.BestHash)
	return b.String()
}

// candidate is one proposed design under evaluation.
type candidate struct {
	topo   *topology.Topology
	params Params
	move   Move
	hash   string
}

// cloneTopo deep-copies a topology so moves on a candidate never touch the
// accepted state.
func cloneTopo(t *topology.Topology) *topology.Topology {
	return &topology.Topology{
		Name:        t.Name,
		G:           t.G.Clone(),
		Servers:     append([]int(nil), t.Servers...),
		SwitchPorts: t.SwitchPorts,
	}
}

// mix folds seed parts into one RNG seed (splitmix64 rounds), so every
// (seed, step, salt) triple gets an independent deterministic stream.
func mix(parts ...int64) int64 {
	x := uint64(0x9E3779B97F4A7C15)
	for _, p := range parts {
		x ^= uint64(p)
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
	}
	return int64(x)
}

// solveCandidate runs one GK rung on a candidate: the longest-matching TM
// over the candidate's own racks (the near-worst-case demand is a function
// of the design, so every candidate is judged on its own worst case), unit
// link capacity, single-threaded solve. Pure function of (design, eps).
func solveCandidate(ctx context.Context, t *topology.Topology, eps float64, warm []float64, export bool) (*Eval, error) {
	m := tm.LongestMatching(t.G, t.ToRs(), func(r int) int { return t.Servers[r] })
	nw := fluid.NewNetwork(t.G, 1.0)
	res := fluid.MaxConcurrentFlow(nw, fluid.Commodities(m), fluid.GKOptions{
		Epsilon:     eps,
		Workers:     1,
		Ctx:         ctx,
		WarmStart:   warm,
		ExportDuals: export,
	})
	if ctx != nil && ctx.Err() != nil {
		return nil, ctx.Err() // partial solves are never cached
	}
	return &Eval{
		Throughput: res.Throughput,
		UpperBound: res.UpperBound,
		Phases:     res.Phases,
		Epsilon:    eps,
		duals:      res.Duals,
	}, nil
}

func decodeEval(data []byte) (any, error) {
	var e Eval
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, err
	}
	return &e, nil
}

// runner evaluates candidates through the harness worker pool with
// content-addressed caching.
type runner struct {
	ctx       context.Context
	workers   int
	cache     *harness.Cache
	baseSpec  string
	coarseEps float64
	cacheHits atomic.Int64
}

func (r *runner) spec(hash string, eps float64) string {
	return fmt.Sprintf("%s|eps=%g|design=%s", r.baseSpec, eps, hash)
}

// coarse evaluates every candidate at the coarse rung, in parallel, cold.
// Results are index-aligned with cands and independent of worker count and
// cache state.
func (r *runner) coarse(cands []*candidate) ([]*Eval, error) {
	jobs := make([]harness.Job, len(cands))
	for i := range cands {
		c := cands[i]
		jobs[i] = harness.Job{
			Name: "search-cand",
			Spec: r.spec(c.hash, r.coarseEps),
			Run: func(ctx context.Context) (any, error) {
				return solveCandidate(ctx, c.topo, r.coarseEps, nil, true)
			},
			Decode: decodeEval,
		}
	}
	return r.run(jobs)
}

// fine re-solves one candidate at the fine rung, warm-started from its own
// coarse duals. A coarse cache hit carries no duals, so the closure
// recomputes the deterministic cold coarse solve first — fine results are
// therefore cache-state independent too.
func (r *runner) fine(c *candidate, coarse *Eval, fineEps float64) (*Eval, error) {
	job := harness.Job{
		Name: "search-cand",
		Spec: r.spec(c.hash, fineEps),
		Run: func(ctx context.Context) (any, error) {
			warm := coarse.duals
			if warm == nil {
				ce, err := solveCandidate(ctx, c.topo, r.coarseEps, nil, true)
				if err != nil {
					return nil, err
				}
				warm = ce.duals
			}
			return solveCandidate(ctx, c.topo, fineEps, warm, false)
		},
		Decode: decodeEval,
	}
	evals, err := r.run([]harness.Job{job})
	if err != nil {
		return nil, err
	}
	return evals[0], nil
}

func (r *runner) run(jobs []harness.Job) ([]*Eval, error) {
	rep, err := harness.Run(r.ctx, jobs, harness.Options{
		Workers: r.workers,
		Cache:   r.cache,
		Salt:    CodeSalt,
	})
	if err != nil {
		return nil, err
	}
	if err := rep.Err(); err != nil {
		return nil, err
	}
	r.cacheHits.Add(int64(rep.CacheHits))
	out := make([]*Eval, len(jobs))
	for i := range rep.Jobs {
		e, ok := rep.Jobs[i].Value.(*Eval)
		if !ok {
			return nil, fmt.Errorf("search: unexpected eval type %T", rep.Jobs[i].Value)
		}
		out[i] = e
	}
	return out, nil
}

// Run searches for a same-cost design that beats the starting topology's
// near-worst-case GK throughput. params may be the zero value (rewiring
// moves only). The returned result is deterministic: a pure function of
// (base, params, Options.{Seed,Budget,Batch,ProxyTop,CoarseEps,FineEps,
// Strategy,Temp,Name}) — never of Workers, Cache state, or wall clock.
func Run(base *topology.Topology, params Params, opt Options) (*Result, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("search: invalid starting topology: %w", err)
	}
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	env := EnvelopeOf(base)

	baseSpec := DefaultBaseSpec
	var diskCache *harness.Cache
	if opt.Cache != nil {
		baseSpec = opt.Cache.BaseSpec
		diskCache = opt.Cache.Cache
	}
	rn := &runner{
		ctx:       ctx,
		workers:   opt.Workers,
		cache:     diskCache,
		baseSpec:  baseSpec,
		coarseEps: opt.CoarseEps,
	}

	// Baseline rung: the starting design is candidate zero — it spends one
	// budget unit and sets the value every move must beat.
	cur := cloneTopo(base)
	curParams := params
	baseDesign := topology.DesignOf(base)
	baseCand := &candidate{topo: cur, params: params, hash: baseDesign.Hash()}
	res := &Result{
		BaselineName: base.Name,
		BaselineHash: baseCand.hash,
		Envelope:     env,
	}
	coarseEvals, err := rn.coarse([]*candidate{baseCand})
	if err != nil {
		return nil, err
	}
	res.Spent = 1
	baseFine := coarseEvals[0]
	if opt.FineEps != opt.CoarseEps {
		if baseFine, err = rn.fine(baseCand, coarseEvals[0], opt.FineEps); err != nil {
			return nil, err
		}
		res.FineSolves++
	}
	res.Baseline = baseFine.Throughput
	stateVal := baseFine.Throughput

	best := topology.DesignOf(base)
	best.Name = opt.Name
	res.Best, res.BestHash, res.BestVal, res.BestStep = best, baseCand.hash, stateVal, 0

	emptyStreak := 0
	for step := 1; res.Spent < opt.Budget && emptyStreak < maxEmptySteps; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(mix(opt.Seed, int64(step), 0x50524f50))) // "PROP"
		cands := proposeBatch(cur, curParams, env, rng, opt, step)
		if len(cands) == 0 {
			emptyStreak++
			st := Step{Step: step, Move: "none", State: stateVal, Best: res.BestVal}
			res.Steps = append(res.Steps, st)
			if opt.OnStep != nil {
				opt.OnStep(st)
			}
			continue
		}
		emptyStreak = 0

		// Proxy rung: rank the whole batch cheaply, keep the top few.
		proxies := make([]float64, len(cands))
		parallelFor(opt.Workers, len(cands), func(i int) {
			proxies[i] = Proxy(cands[i].topo)
		})
		order := make([]int, len(cands))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			if proxies[order[a]] != proxies[order[b]] {
				return proxies[order[a]] > proxies[order[b]]
			}
			return order[a] < order[b]
		})
		top := order
		if len(top) > opt.ProxyTop {
			top = top[:opt.ProxyTop]
		}
		if rem := opt.Budget - res.Spent; len(top) > rem {
			top = top[:rem]
		}
		sel := make([]*candidate, len(top))
		for i, idx := range top {
			sel[i] = cands[idx]
		}

		// Coarse rung: GK on the survivors, in parallel.
		evals, err := rn.coarse(sel)
		if err != nil {
			return nil, err
		}
		res.Spent += len(sel)
		win := 0
		for i := 1; i < len(evals); i++ {
			if evals[i].Throughput > evals[win].Throughput {
				win = i
			}
		}
		winner, winEval := sel[win], evals[win]

		// Fine rung: the batch winner only, warm from its own coarse duals.
		fineEval := winEval
		if opt.FineEps != opt.CoarseEps {
			if fineEval, err = rn.fine(winner, winEval, opt.FineEps); err != nil {
				return nil, err
			}
			res.FineSolves++
		}

		delta := fineEval.Throughput - stateVal
		accepted := acceptMove(delta, step, opt)
		if accepted {
			cur = winner.topo
			curParams = winner.params
			stateVal = fineEval.Throughput
		}
		if fineEval.Throughput > res.BestVal {
			d := topology.DesignOf(winner.topo)
			d.Name = opt.Name
			res.Best, res.BestHash, res.BestVal, res.BestStep = d, winner.hash, fineEval.Throughput, step
		}
		st := Step{
			Step:      step,
			Move:      winner.move.String(),
			Proposals: len(cands),
			Proxy:     proxies[top[win]],
			Coarse:    winEval.Throughput,
			Fine:      fineEval.Throughput,
			Accepted:  accepted,
			State:     stateVal,
			Best:      res.BestVal,
		}
		res.Steps = append(res.Steps, st)
		if opt.OnStep != nil {
			opt.OnStep(st)
		}
	}
	res.CacheHits = int(rn.cacheHits.Load())
	return res, nil
}

// acceptMove decides accept/reject deterministically: improvements always,
// degradations under annealing with probability exp(delta/T) drawn from a
// per-step RNG, never under hill-climbing.
func acceptMove(delta float64, step int, opt Options) bool {
	if delta > 0 {
		return true
	}
	if opt.Strategy != "anneal" {
		return false
	}
	t := opt.Temp * math.Pow(annealDecay, float64(step-1))
	if t < 1e-6 {
		return false
	}
	r := rand.New(rand.NewSource(mix(opt.Seed, int64(step), 0x414343))) // "ACC"
	return math.Exp(delta/t) > r.Float64()
}

// proposeBatch draws up to opt.Batch distinct valid candidates from the
// current state: rewiring moves on clones of cur, parameter moves as fresh
// generator instances. Every candidate already satisfies the envelope and
// connectivity. Draws come serially from the per-step RNG, so the proposal
// stream is identical at any worker count.
func proposeBatch(cur *topology.Topology, p Params, env Envelope, rng *rand.Rand, opt Options, step int) []*candidate {
	_, regular := cur.G.IsRegular()
	seen := map[string]bool{}
	var out []*candidate
	for attempt := 0; len(out) < opt.Batch && attempt < opt.Batch*proposalOverdraw; attempt++ {
		var cand *candidate
		switch pickMoveKind(p, regular, rng) {
		case "param":
			np, m, ok := proposeParam(p, rng)
			if !ok {
				continue
			}
			m.Seed = mix(opt.Seed, int64(step), int64(attempt), 0x504152) // "PAR"
			if !preAdmitsParams(np, env) {
				continue
			}
			t := buildParams(np, m.Seed)
			if t == nil {
				continue
			}
			cand = &candidate{topo: t, params: np, move: m}
		case "rebalance":
			m, ok := ProposeRebalance(cur, rng)
			if !ok {
				continue
			}
			t := cloneTopo(cur)
			if ApplyChecked(t, m) != nil {
				continue
			}
			cand = &candidate{topo: t, params: p, move: m}
		default: // swap
			m, ok := ProposeSwap(cur, rng)
			if !ok {
				continue
			}
			t := cloneTopo(cur)
			if ApplyChecked(t, m) != nil {
				continue
			}
			cand = &candidate{topo: t, params: p, move: m}
		}
		if !env.Admits(cand.topo) {
			continue
		}
		cand.hash = topology.DesignOf(cand.topo).Hash()
		if seen[cand.hash] {
			continue
		}
		seen[cand.hash] = true
		out = append(out, cand)
	}
	return out
}

// pickMoveKind draws the move family: parameter moves only when generator
// coordinates exist, rebalance only on non-regular graphs (regular
// instances would just strand a port).
func pickMoveKind(p Params, regular bool, rng *rand.Rand) string {
	r := rng.Float64()
	if p.Kind != "" && r < 0.2 {
		return "param"
	}
	if !regular && r < 0.4 {
		return "rebalance"
	}
	return "swap"
}

// parallelFor runs f(i) for i in [0,n) on up to `workers` goroutines; each
// index exactly once, results written by index, so the outcome is
// schedule-independent.
func parallelFor(workers, n int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

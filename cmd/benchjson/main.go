// Command benchjson converts `go test -bench` output on stdin into the
// repository's benchmark-trajectory JSON (see README "Benchmark
// trajectory"): a map from benchmark name (GOMAXPROCS suffix stripped) to
// ns/op, B/op, allocs/op and iteration count, so `make bench` can check in
// comparable numbers (BENCH_pr2.json, BENCH_pr3.json, ...) that future PRs
// diff against.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH_pr2.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result holds one benchmark's metrics. Zero BytesPerOp/AllocsPerOp simply
// means -benchmem was off or the op allocated nothing.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// File is the checked-in trajectory format.
type File struct {
	Format     string            `json:"format"` // "beyondft-bench-v1"
	GoMaxProcs int               `json:"go_maxprocs,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkAPSP/parallel-8   100   11915343 ns/op   954 B/op   20 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// allocGates collects repeated -max-allocs name=N flags: a hard ceiling on
// allocs/op per named benchmark, so steady-state zero-alloc kernels cannot
// silently regress.
type allocGates map[string]int64

func (g allocGates) String() string { return fmt.Sprintf("%v", map[string]int64(g)) }

func (g allocGates) Set(v string) error {
	name, limit, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=N, got %q", v)
	}
	n, err := strconv.ParseInt(limit, 10, 64)
	if err != nil {
		return fmt.Errorf("bad limit in %q: %w", v, err)
	}
	g[name] = n
	return nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	gates := allocGates{}
	flag.Var(gates, "max-allocs",
		"benchmark=N: fail if the named benchmark exceeds N allocs/op (repeatable; requires -benchmem input)")
	flag.Parse()

	f := File{Format: "beyondft-bench-v1", Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the run stays readable
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		if m[2] != "" {
			if p, err := strconv.Atoi(m[2]); err == nil && f.GoMaxProcs == 0 {
				f.GoMaxProcs = p
			}
		}
		iters, _ := strconv.ParseInt(m[3], 10, 64)
		ns, _ := strconv.ParseFloat(m[4], 64)
		r := Result{Iterations: iters, NsPerOp: ns}
		for _, field := range strings.Split(strings.TrimSpace(m[5]), "\t") {
			field = strings.TrimSpace(field)
			switch {
			case strings.HasSuffix(field, " B/op"):
				r.BytesPerOp, _ = strconv.ParseInt(strings.Fields(field)[0], 10, 64)
			case strings.HasSuffix(field, " allocs/op"):
				r.AllocsPerOp, _ = strconv.ParseInt(strings.Fields(field)[0], 10, 64)
			}
		}
		if prev, ok := f.Benchmarks[name]; ok && prev.NsPerOp <= ns {
			continue // -count > 1: keep the fastest run
		}
		f.Benchmarks[name] = r
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(f.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	for name, limit := range gates {
		r, ok := f.Benchmarks[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: -max-allocs %s=%d: benchmark not in input\n", name, limit)
			os.Exit(1)
		}
		if r.AllocsPerOp > limit {
			fmt.Fprintf(os.Stderr, "benchjson: %s allocates %d/op, gate is %d/op\n", name, r.AllocsPerOp, limit)
			os.Exit(1)
		}
	}
	data, err := json.MarshalIndent(f, "", "  ") // map keys marshal sorted: stable diffs
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(f.Benchmarks), *out)
}

// Throughput proportionality (§2) in the fluid-flow model: how close does a
// real expander get to the ideal min(α/x, 1) curve, and how badly does an
// equal-cost oversubscribed fat-tree fall short?
package main

import (
	"fmt"
	"math/rand"

	"beyondft/internal/fluid"
	"beyondft/internal/tm"
	"beyondft/internal/topology"
	"beyondft/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	// A 40-switch Jellyfish with 4 servers and 6 network ports per switch:
	// oversubscribed (4 servers share 6 uplinks).
	jf := topology.NewJellyfish(40, 6, 4, rng)
	fmt.Printf("%s: %d switches, %d servers\n\n", jf.Name, jf.NumSwitches(), jf.TotalServers())

	serversOf := func(r int) int { return jf.Servers[r] }
	measure := func(x float64) float64 {
		racks := workload.ActiveRacks(jf, x, false, rng)
		m := tm.LongestMatching(jf.G, racks, serversOf)
		return fluid.Throughput(jf.G, m, fluid.GKOptions{Epsilon: 0.05})
	}

	alpha := measure(1.0)
	fmt.Printf("worst-case-style throughput at x=1.0 (alpha): %.3f\n\n", alpha)
	fmt.Printf("%-8s %-12s %-14s %-10s\n", "x", "jellyfish", "TP=min(a/x,1)", "ratio")
	for _, x := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0} {
		got := measure(x)
		ideal := fluid.ThroughputProportional(alpha, x)
		fmt.Printf("%-8.1f %-12.3f %-14.3f %-10.2f\n", x, got, ideal, got/ideal)
	}
	fmt.Println("\nTheorem 2.1: no static network can exceed the TP curve over")
	fmt.Println("permutation TMs; good expanders track it closely from below.")
}

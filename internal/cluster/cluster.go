package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"beyondft/internal/obs"
)

// ForwardHeader marks a request that has already been forwarded once by a
// peer. Receivers must serve it locally, whatever their own ring says: two
// nodes that momentarily disagree on membership could otherwise bounce a
// request between themselves forever. The value is the origin node's ID,
// for logs.
const ForwardHeader = "X-Beyondftd-Forwarded"

// Forwarded reports whether r arrived via a peer forward (loop guard).
func Forwarded(r *http.Request) bool { return r.Header.Get(ForwardHeader) != "" }

var (
	// ErrSelf reports that forwarding bottomed out on this node itself (the
	// key's live owner chain leads here): the caller should compute locally.
	ErrSelf = errors.New("cluster: key is owned locally")
	// ErrPeerSaturated reports that the key's owner shed the forwarded
	// request with 429. The caller should propagate the shed rather than
	// compute locally — if the fleet is out of capacity, absorbing the
	// owner's rejections locally would defeat admission control.
	ErrPeerSaturated = errors.New("cluster: owner saturated")
)

// maxForwardResponse caps how many bytes a peer response may carry (a
// defensive bound; real envelopes are a few KB).
const maxForwardResponse = 64 << 20

// Config configures a Cluster.
type Config struct {
	// Self is this node's advertised base URL; it must appear in Peers
	// (it is added if absent).
	Self string
	// Peers are the base URLs of every ring member, including Self.
	Peers []string
	// VNodes is the number of virtual nodes per peer (0 = DefaultVNodes).
	VNodes int
	// ForwardTimeout bounds one forward attempt to one peer (0 = 15s).
	ForwardTimeout time.Duration
	// Retries is how many extra attempts a transiently failing peer gets
	// before the forward hedges to the next owner (< 0 = 0; default 1).
	Retries int
	// Backoff is the sleep before the first retry, doubling per retry
	// (0 = 25ms).
	Backoff time.Duration
	// Hedge is how many successor owners to try after the owner itself
	// (0 = 1; the owner plus one hedge survives any single node failure).
	Hedge int
	// DownFor is how long a peer is skipped after a failed forward before
	// being probed again (0 = 1s). Skipping turns a dead peer's cost from
	// one timeout per request into one per DownFor.
	DownFor time.Duration
	// Registry receives cluster metrics (nil disables).
	Registry *obs.Registry
	// Client overrides the forwarding HTTP client (tests); nil builds one.
	Client *http.Client
	// Logf, if non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Cluster is one node's view of the fleet: the shared ring, the forwarding
// transport, and per-peer health.
type Cluster struct {
	cfg     Config
	self    string
	ring    atomic.Pointer[Ring]
	client  *http.Client
	metrics *Metrics

	mu   sync.Mutex
	down map[string]time.Time // peer -> skip until
}

// New validates cfg and builds a node's cluster view.
func New(cfg Config) (*Cluster, error) {
	cfg.Self = normalizeURL(cfg.Self)
	if cfg.Self == "" {
		return nil, errors.New("cluster: empty self URL")
	}
	peers := make([]string, 0, len(cfg.Peers)+1)
	for _, p := range cfg.Peers {
		if u := normalizeURL(p); u != "" {
			peers = append(peers, u)
		}
	}
	found := false
	for _, p := range peers {
		if p == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		peers = append(peers, cfg.Self)
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 15 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 1
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 25 * time.Millisecond
	}
	if cfg.Hedge <= 0 {
		cfg.Hedge = 1
	}
	if cfg.DownFor <= 0 {
		cfg.DownFor = time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	c := &Cluster{
		cfg:     cfg,
		self:    cfg.Self,
		client:  client,
		metrics: NewMetrics(cfg.Registry),
		down:    map[string]time.Time{},
	}
	c.setRing(NewRing(peers, cfg.VNodes))
	return c, nil
}

// normalizeURL canonicalizes a peer address: trims whitespace and trailing
// slashes and defaults the scheme to http, so "host:8080", "host:8080/" and
// "http://host:8080" are one ring member, not three.
func normalizeURL(u string) string {
	u = strings.TrimRight(strings.TrimSpace(u), "/")
	if u == "" {
		return ""
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}

// Self returns this node's advertised URL.
func (c *Cluster) Self() string { return c.self }

// Peers returns the current ring membership (sorted).
func (c *Cluster) Peers() []string { return c.ring.Load().Nodes() }

// Metrics returns the cluster metric set.
func (c *Cluster) Metrics() *Metrics { return c.metrics }

// Owner returns the ring owner of key.
func (c *Cluster) Owner(key string) string { return c.ring.Load().Owner(key) }

// Owns reports whether this node owns key.
func (c *Cluster) Owns(key string) bool { return c.Owner(key) == c.self }

// SetPeers replaces the ring membership (Self is always retained).
// Ownership moves deterministically and minimally (see ring_test.go), so a
// rolling membership change re-homes only its share of the keyspace.
func (c *Cluster) SetPeers(peers []string) {
	all := make([]string, 0, len(peers)+1)
	for _, p := range peers {
		if u := normalizeURL(p); u != "" {
			all = append(all, u)
		}
	}
	all = append(all, c.self)
	c.setRing(NewRing(all, c.cfg.VNodes))
}

func (c *Cluster) setRing(r *Ring) {
	c.ring.Store(r)
	c.metrics.setRing(r)
	c.logf("cluster: %s self=%s", r, c.self)
}

// Forward sends body to path on key's owner and returns the peer's response
// body. On transient peer failure it retries with backoff, then hedges to
// the next distinct ring owner. It returns ErrSelf when the live owner
// chain reaches this node (compute locally), ErrPeerSaturated when the
// owner shed the request, and a joined error when every candidate failed
// (the caller falls back to computing locally — availability over strict
// ownership).
func (c *Cluster) Forward(ctx context.Context, key, path string, body []byte) (data []byte, peer string, err error) {
	owners := c.ring.Load().Owners(key, 1+c.cfg.Hedge)
	var lastErr error
	for i, p := range owners {
		if p == c.self {
			return nil, "", ErrSelf
		}
		if i > 0 {
			c.metrics.Hedges.Add(1)
		}
		if !c.usable(p) {
			lastErr = fmt.Errorf("peer %s marked down", p)
			continue
		}
		data, err := c.attempt(ctx, p, path, body)
		if err == nil {
			return data, p, nil
		}
		if errors.Is(err, ErrPeerSaturated) {
			return nil, p, err
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	c.metrics.Fallbacks.Add(1)
	if lastErr == nil {
		lastErr = errors.New("no candidate owners")
	}
	return nil, "", fmt.Errorf("cluster: forward key=%.12s…: %w", key, lastErr)
}

// attempt tries one peer up to 1+Retries times with exponential backoff,
// marking the peer down when all attempts fail so subsequent forwards skip
// straight to hedging until the peer has had DownFor to recover.
func (c *Cluster) attempt(ctx context.Context, peer, path string, body []byte) ([]byte, error) {
	var lastErr error
	backoff := c.cfg.Backoff
	for try := 0; try <= c.cfg.Retries; try++ {
		if try > 0 {
			c.metrics.Retries.Add(1)
			select {
			case <-time.After(backoff):
				backoff *= 2
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		c.metrics.Forwards(peer).Add(1)
		data, retryable, err := c.once(ctx, peer, path, body)
		if err == nil {
			c.markUp(peer)
			return data, nil
		}
		c.metrics.ForwardErrors(peer).Add(1)
		lastErr = err
		if !retryable || ctx.Err() != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrPeerSaturated) {
		c.markDown(peer, lastErr)
	}
	return nil, lastErr
}

// once performs a single forward attempt under the per-peer timeout.
func (c *Cluster) once(ctx context.Context, peer, path string, body []byte) (data []byte, retryable bool, err error) {
	tctx, cancel := context.WithTimeout(ctx, c.cfg.ForwardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, c.self)
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, true, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardResponse))
		if err != nil {
			return nil, true, fmt.Errorf("peer %s: read response: %w", peer, err)
		}
		return data, false, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return nil, false, fmt.Errorf("peer %s: %w", peer, ErrPeerSaturated)
	default:
		io.Copy(io.Discard, resp.Body)
		// 5xx may be transient (a peer mid-drain answers 503); 4xx will not
		// improve on retry.
		return nil, resp.StatusCode >= 500, fmt.Errorf("peer %s: status %d", peer, resp.StatusCode)
	}
}

// usable reports whether a peer should be tried, allowing one probe once
// its down-window has elapsed.
func (c *Cluster) usable(peer string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	until, bad := c.down[peer]
	if !bad {
		return true
	}
	if time.Now().After(until) {
		// Probe: let this request through; failure re-arms the window.
		delete(c.down, peer)
		return true
	}
	return false
}

func (c *Cluster) markDown(peer string, cause error) {
	c.mu.Lock()
	_, already := c.down[peer]
	c.down[peer] = time.Now().Add(c.cfg.DownFor)
	c.mu.Unlock()
	if !already {
		c.metrics.Down(peer).Add(1)
		c.logf("cluster: peer %s down for %s: %v", peer, c.cfg.DownFor, cause)
	}
}

func (c *Cluster) markUp(peer string) {
	c.mu.Lock()
	_, was := c.down[peer]
	delete(c.down, peer)
	c.mu.Unlock()
	if was {
		c.logf("cluster: peer %s back up", peer)
	}
}

func (c *Cluster) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Routing corner cases (§6.1–§6.3): why neither ECMP nor VLB alone
// suffices on expanders, and how the HYB hybrid handles both regimes.
//
// Scenario 1 — adjacent racks: all traffic between two directly connected
// racks. ECMP uses only the single direct link; VLB and HYB spread load.
//
// Scenario 2 — all-to-all: uniform traffic. VLB wastes 2x capacity on
// detours; ECMP and HYB use shortest paths.
package main

import (
	"fmt"
	"math/rand"

	"beyondft/internal/netsim"
	"beyondft/internal/sim"
	"beyondft/internal/topology"
	"beyondft/internal/workload"
)

func main() {
	xp := topology.NewXpander(5, 9, 3, rand.New(rand.NewSource(1)))
	fmt.Printf("Xpander: %d switches, degree %d, %d servers\n\n",
		xp.NumSwitches(), xp.D, xp.TotalServers())

	schemes := []netsim.RoutingScheme{netsim.ECMP, netsim.VLB, netsim.HYB}

	run := func(pairs workload.PairDist, lambda float64, seed int64) map[netsim.RoutingScheme]workload.Result {
		out := map[netsim.RoutingScheme]workload.Result{}
		for _, s := range schemes {
			cfg := netsim.DefaultConfig()
			cfg.Routing = s
			net := netsim.NewNetwork(&xp.Topology, cfg)
			exp := workload.DefaultExperiment(pairs, workload.PFabricWebSearch(), lambda,
				50*sim.Millisecond, 350*sim.Millisecond, 1500*sim.Millisecond, seed)
			out[s] = exp.Run(net)
		}
		return out
	}

	// Scenario 1: two adjacent racks, load past the single link's capacity.
	neighbor := xp.G.Neighbors(0)[0]
	adjacent := workload.NewTwoRacks(&xp.Topology, 0, neighbor, 3)
	fmt.Println("Scenario 1: adjacent-rack traffic at 800 flows/s (one 10G direct link):")
	for s, r := range run(adjacent, 800, 11) {
		fmt.Printf("  %-5s avg FCT %8.2f ms  (overloaded=%v)\n", s, r.AvgFCTMs, r.Overloaded)
	}
	fmt.Println("  -> ECMP bottlenecks on the direct link; VLB/HYB exploit path diversity")

	// Scenario 2: all-to-all at high load.
	rng := rand.New(rand.NewSource(2))
	a2a := workload.NewA2A(&xp.Topology, workload.ActiveRacks(&xp.Topology, 1.0, false, rng))
	lambda := 60.0 * float64(a2a.ActiveServers())
	fmt.Printf("\nScenario 2: all-to-all at %.0f flows/s:\n", lambda)
	for s, r := range run(a2a, lambda, 12) {
		fmt.Printf("  %-5s avg FCT %8.2f ms  (overloaded=%v)\n", s, r.AvgFCTMs, r.Overloaded)
	}
	fmt.Println("  -> VLB wastes 2x capacity on detours; ECMP/HYB stay on shortest paths")
}
